"""Spec-driven experiment execution with a disk-backed artifact cache.

``Runner(cache_dir=...).run(ExperimentSpec(model, dataset, profile, seed))``
is the single fit → generate path of the repository: the CLI, every
benchmark and every example route through it.

Determinism
-----------
Each spec owns an independent fit/generate RNG stream derived from
``SeedSequence([seed, crc32(model), crc32(dataset), crc32(profile),
crc32(overrides)])``.  The few-shot supervision stream is seeded from
(seed, dataset) only, so all model variants at one seed share the same
labeled set.  Two runs of the same spec, in the same process or not,
produce bit-identical graphs.

Caching
-------
Two layers:

* an in-process memory cache (spec → :class:`RunResult`, fitted model
  included when a fit actually happened), so e.g. the Figure 6 benchmark
  reuses the models fitted for Figure 4 within one pytest session;
* an optional disk cache under ``cache_dir``: per spec a compressed
  ``<key>.npz`` adjacency (written by
  :func:`repro.core.serialization.save_graph`), a ``<key>.json``
  metadata sidecar (spec echo, timings, metrics, format version), and a
  ``<key>.model.npz`` fitted-model archive (written by
  :func:`repro.core.serialization.save_model`).  A warm disk cache
  survives across processes and makes a second ``run`` of the same spec
  perform **zero model fitting** — including ``need_model=True`` runs,
  which replay the fitted model from the archive instead of refitting.

Checkpoint / resume
-------------------
While a fit is *running*, its Trainer-backed training state checkpoints
into the same cache as ``<key>.ckpt.npz`` (at most every
``checkpoint_interval`` seconds; see :mod:`repro.train`).  A later
``run`` of the same spec that misses the artifact cache but finds a
checkpoint resumes the fit from its last completed epoch instead of
refitting from scratch — and because the checkpoint carries the exact
RNG state, the resumed run's artifacts are byte-identical to an
uninterrupted one.  The checkpoint is deleted once the finished
artifacts land, and it is stamped with the resolved parameters, so a
profile change invalidates it just like the artifact cache.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.serialization import (can_serialize, load_graph, load_model,
                                  save_graph, save_model)
from ..data import load_dataset
from ..eval import (mean_discrepancy, overall_discrepancy,
                    protected_discrepancy)
from ..graph import Graph
from ..models import GraphGenerativeModel
from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from ..registry import get_entry
from .supervision import FEW_SHOT_PER_CLASS, Supervision

__all__ = ["ExperimentSpec", "RunResult", "Runner"]

#: bump when the cache layout or run semantics change incompatibly
#: (v3: FairGen's generator update fuses the pos/neg log-likelihood
#: forwards, which reassociates weight-gradient reductions — ULP-level
#: drift that compounds over training, so v2 fairgen artifacts are no
#: longer reproducible by a cold run of the same spec.  v2: the walk
#: engine's exact-fallback RNG consumption changed with the batched
#: inverse-CDF draw)
CACHE_FORMAT = "run-cache-v3"

#: sampling budget for the average-shortest-path metric in run metrics
_ASPL_SAMPLE = 120


def _freeze(value):
    """Recursively convert an override value to a hashable equivalent."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v))
                            for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        # Set iteration order is salted per process; sort so the cache
        # key and RNG entropy stay deterministic across processes.
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    hash(value)  # unhashable exotics fail here, at spec construction
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully determined experiment: what to fit, on what, and how."""

    model: str                  #: registry name (canonical, display, alias)
    dataset: str                #: benchmark dataset name (Table I)
    profile: str = "paper"      #: hyperparameter profile name
    seed: int = 0               #: base seed of the spec's RNG streams
    #: hyperparameter overrides applied on top of the profile, stored as
    #: a sorted tuple of (name, value) pairs so specs stay hashable
    overrides: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self):
        pairs = (self.overrides.items()
                 if isinstance(self.overrides, Mapping) else self.overrides)
        object.__setattr__(
            self, "overrides",
            tuple(sorted(((str(k), _freeze(v)) for k, v in pairs),
                         key=lambda kv: kv[0])))
        # Normalise to the canonical registry name so specs built from a
        # display name ("FairGen-R") and a canonical one ("fairgen-r")
        # share a cache entry.
        object.__setattr__(self, "model", get_entry(self.model).name)
        object.__setattr__(self, "dataset", self.dataset.upper())

    @property
    def override_dict(self) -> dict[str, object]:
        return dict(self.overrides)

    def cache_key(self) -> str:
        """Filesystem-safe identifier of this spec."""
        key = f"{self.model}__{self.dataset}__{self.profile}__s{self.seed}"
        if self.overrides:
            digest = zlib.crc32(
                json.dumps(self.overrides, sort_keys=True,
                           default=str).encode())
            key += f"__o{digest:08x}"
        return key

    def entropy(self) -> list[int]:
        """Integers feeding ``SeedSequence`` for this spec's streams."""
        parts = [self.model, self.dataset, self.profile,
                 json.dumps(self.overrides, sort_keys=True, default=str)]
        return [self.seed & 0xFFFFFFFF,
                *(zlib.crc32(p.encode()) for p in parts)]

    def rng(self, stream: int = 0) -> np.random.Generator:
        """Deterministic per-spec generator; streams are independent."""
        return np.random.default_rng(
            np.random.SeedSequence([*self.entropy(), stream]))


@dataclass
class RunResult:
    """Outcome of one (possibly cached) fit + generate execution."""

    spec: ExperimentSpec
    generated: Graph
    fit_seconds: float
    generate_seconds: float
    from_cache: bool = False
    #: the fitted model — ``None`` when the run was served from the disk
    #: cache without fitting
    model: GraphGenerativeModel | None = None
    #: ``{"overall": {...}, "overall_mean": float, "protected": ...}``
    #: when the run was executed with ``with_metrics=True``
    metrics: dict | None = None
    #: raw wall-clock of the *whole* stacked fit this seed rode in (the
    #: per-seed ``fit_seconds`` is the amortised share, raw / K), and K
    #: itself — ``None`` for ordinary per-seed fits.  Persisted in the
    #: sidecar so stacking speedup is reconstructable from sidecars
    #: alone: ``sum(per-seed sequential fits) / stacked_fit_seconds``.
    stacked_fit_seconds: float | None = None
    stacked_size: int | None = None

    @property
    def total_seconds(self) -> float:
        return self.fit_seconds + self.generate_seconds

    # Legacy aliases kept for the benchmark suite's table code.
    @property
    def model_name(self) -> str:
        return get_entry(self.spec.model).display_name

    @property
    def dataset_name(self) -> str:
        return self.spec.dataset


class Runner:
    """Executes :class:`ExperimentSpec` objects through the one public
    fit/generate path, with memory + disk caching.

    Parameters
    ----------
    cache_dir:
        Directory for the disk-backed artifact cache; ``None`` disables
        disk caching (the in-process memory cache still applies).
    allow_surrogate:
        Derive surrogate supervision for unlabeled datasets when a
        label-aware model is requested (the benchmark convention).  With
        ``False``, such specs raise ``ValueError``.
    few_shot_per_class:
        Size of the few-shot labeled set revealed to label-aware models.
    checkpoint_interval:
        Minimum seconds between mid-fit ``<key>.ckpt.npz`` checkpoint
        writes (requires a ``cache_dir``).  ``0`` checkpoints after
        every training epoch; fits shorter than the interval never pay
        any checkpoint I/O.  The scheduler's Worker sets its heartbeat
        interval here so a SIGKILLed fit resumes losing at most one
        lease period of work.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 allow_surrogate: bool = True,
                 few_shot_per_class: int = FEW_SHOT_PER_CLASS,
                 checkpoint_interval: float = 30.0,
                 registry: MetricsRegistry | None = None):
        self.cache_dir = (Path(cache_dir).expanduser()
                          if cache_dir is not None else None)
        self.allow_surrogate = allow_surrogate
        self.few_shot_per_class = few_shot_per_class
        self.checkpoint_interval = float(checkpoint_interval)
        self._memory: dict[ExperimentSpec, RunResult] = {}
        self._datasets: dict[str, object] = {}
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._m_hits = registry.counter(
            "runner_cache_hits_total", "Runner cache hits by layer")
        self._m_misses = registry.counter(
            "runner_cache_misses_total", "Runner cache misses (fresh fits)")
        self._m_fits = registry.counter(
            "runner_fits_total", "Model fits executed by the Runner")
        self._m_generates = registry.counter(
            "runner_generates_total", "Graph generations executed")
        self._m_fit_seconds = registry.histogram(
            "runner_fit_seconds", "Wall-clock seconds per Runner fit")
        self._m_generate_seconds = registry.histogram(
            "runner_generate_seconds", "Wall-clock seconds per generation")

    # ------------------------------------------------------------------
    # Dataset / supervision helpers
    # ------------------------------------------------------------------
    def dataset(self, name: str):
        """Load (and memoise) a benchmark dataset."""
        key = name.upper()
        if key not in self._datasets:
            self._datasets[key] = load_dataset(key)
        return self._datasets[key]

    def supervision_for(self, spec: ExperimentSpec) -> Supervision:
        """The supervision a label-aware model would receive for ``spec``.

        The few-shot stream is seeded from (seed, dataset) only — NOT
        the model or profile — so every model variant at the same seed
        trains on the identical labeled set L.  The paper's ablations
        (Table III, Figure 5) compare variants; drawing different L per
        variant would confound them with labeled-set variance.
        """
        entropy = [spec.seed & 0xFFFFFFFF,
                   zlib.crc32(spec.dataset.encode()), 1]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return Supervision.from_dataset(
            self.dataset(spec.dataset), rng=rng,
            per_class=self.few_shot_per_class,
            allow_surrogate=self.allow_surrogate)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec, *, need_model: bool = False,
            with_metrics: bool = False) -> RunResult:
        """Execute (or replay) one spec.

        ``need_model`` guarantees ``result.model`` is a fitted model —
        restored from the cache's ``.model.npz`` archive when present,
        refit only when the cache has no (valid) model artifact.
        ``with_metrics`` attaches the discrepancy scoreboard
        (overall, and protected when the dataset has — possibly
        surrogate — supervision).
        """
        cached = self._memory.get(spec)
        if cached is not None and (cached.model is not None
                                   or not need_model):
            self._m_hits.inc(layer="memory")
            if with_metrics:
                self._ensure_metrics(spec, cached)
            return cached

        disk = self._load_from_disk(spec, with_metrics,
                                    need_model=need_model)
        if disk is not None:
            self._m_hits.inc(layer="disk")
            self._memory[spec] = disk
            return disk

        self._m_misses.inc()
        result = self._execute(spec)
        # Carry metrics already computed for this artifact (in memory or
        # in the cache sidecar) across a need_model refit.
        result.metrics = ((cached.metrics if cached is not None else None)
                          or self._cached_metrics(spec))
        if with_metrics and result.metrics is None:
            result.metrics = self._metrics_for(spec, result.generated)
        self._store(spec, result)
        return result

    def run_many(self, specs: Iterable[ExperimentSpec], *,
                 processes: int | None = None,
                 need_model: bool = False,
                 with_metrics: bool = False,
                 scheduler=None) -> list[RunResult]:
        """Execute a batch of specs, optionally across processes.

        With ``processes > 1`` the independent specs are distributed over
        a process pool and a shared ``cache_dir`` lets the parent — and
        any later process — replay the artifacts.  Fitted models do not
        cross process boundaries as live objects, but they do cross as
        cache artifacts: with ``need_model=True`` each worker persists
        its fitted model via :func:`repro.core.serialization.save_model`
        and the parent restores it from the cache, so the returned
        results still carry fitted models with zero fits in the parent.
        The one remaining restriction: ``need_model=True`` without a
        ``cache_dir`` has no channel to ship models home, so that
        combination runs sequentially in the parent.

        ``scheduler`` switches from the in-process pool to the
        fault-tolerant distributed queue: pass a queue directory (or a
        :class:`~repro.experiments.scheduler.JobQueue`) shared with any
        number of worker processes — on this host or others.  The batch
        is submitted as jobs, ``processes`` local workers are spawned to
        help drain it (default 2; ``processes=0`` relies entirely on
        external ``repro worker`` fleets), and the results are replayed
        out of the shared ``cache_dir``, which is therefore required.
        """
        specs = list(specs)
        if scheduler is not None:
            return self._run_scheduled(specs, scheduler,
                                       processes=processes,
                                       need_model=need_model,
                                       with_metrics=with_metrics)
        parallel_ok = (processes is not None and processes > 1
                       and (not need_model or self.cache_dir is not None))
        if parallel_ok:
            from concurrent.futures import ProcessPoolExecutor

            # Serve memory hits directly — including metrics-only gaps,
            # which are far cheaper to fill locally than to refit the
            # whole model in a worker.  Only true misses go to the pool.
            pending = []
            for spec in specs:
                existing = self._memory.get(spec)
                if existing is not None and need_model \
                        and existing.model is None:
                    existing = None  # must come from disk or a worker
                if existing is None:  # disk-warm entries replay locally
                    existing = self._load_from_disk(
                        spec, with_metrics, need_model=need_model)
                    if existing is not None:
                        self._memory[spec] = existing
                if existing is None and need_model \
                        and not self._model_round_trips(spec):
                    # A worker's fitted model could not come home through
                    # the cache, so a pool fit would be thrown away and
                    # refit here anyway; fit once in the parent instead.
                    existing = self.run(spec, need_model=True,
                                        with_metrics=with_metrics)
                if existing is None:
                    pending.append(spec)
                elif with_metrics:
                    self._ensure_metrics(spec, existing)
            if pending:
                cache = (os.fspath(self.cache_dir)
                         if self.cache_dir else None)
                with ProcessPoolExecutor(max_workers=processes) as pool:
                    fresh = list(pool.map(
                        _run_in_worker,
                        [(cache, self.allow_surrogate,
                          self.few_shot_per_class, self.checkpoint_interval,
                          spec, with_metrics, need_model)
                         for spec in pending]))
                for spec, result in zip(pending, fresh):
                    if need_model:
                        # The worker persisted its fitted model in the
                        # shared cache; restore it without refitting.
                        result = (self._load_from_disk(
                                      spec, with_metrics, need_model=True)
                                  or self.run(spec, need_model=True,
                                              with_metrics=with_metrics))
                    self._memory[spec] = result
            return [self._memory[spec] for spec in specs]
        return [self.run(spec, need_model=need_model,
                         with_metrics=with_metrics) for spec in specs]

    # ------------------------------------------------------------------
    # Seed-stacked execution
    # ------------------------------------------------------------------
    def stackable(self, specs: Sequence[ExperimentSpec]) -> bool:
        """Whether ``specs`` form a seed-stackable grid cell.

        A cell stacks when its specs differ *only* in seed, there are at
        least two of them, and the model opts into ``fit_stacked`` while
        taking no supervision (per-seed supervision streams would differ
        across the stack, breaking per-seed reproducibility).
        """
        specs = list(specs)
        if len(specs) < 2:
            return False
        head = specs[0]
        cell = (head.model, head.dataset, head.profile, head.overrides)
        if any((s.model, s.dataset, s.profile, s.overrides) != cell
               for s in specs[1:]):
            return False
        if len({s.seed for s in specs}) != len(specs):
            return False
        entry = get_entry(head.model)
        if entry.needs_supervision:
            return False
        return entry.build(head.profile, head.override_dict) \
            .supports_stacked_fit

    def run_stacked(self, specs: Sequence[ExperimentSpec], *,
                    need_model: bool = False,
                    with_metrics: bool = False) -> list[RunResult]:
        """Execute one grid cell's seeds as a single stacked fit.

        The K specs must differ only in seed.  Cache-warm seeds are
        served without fitting; the misses train as ONE vmap-style
        tensor program (:meth:`GraphGenerativeModel.fit_stacked`) and
        unstack into per-seed artifacts stored under the *same* cache
        keys the per-seed path uses — a later ``run`` of any seed, here
        or in a sweep worker, replays them indistinguishably.  Cells
        that cannot stack (single seed, supervision, unsupported model)
        degrade to sequential :meth:`run` calls.
        """
        specs = list(specs)
        if not specs:
            return []
        if not self.stackable(specs):
            return [self.run(spec, need_model=need_model,
                             with_metrics=with_metrics) for spec in specs]
        pending = []
        for spec in specs:
            existing = self._memory.get(spec)
            if existing is not None and need_model \
                    and existing.model is None:
                existing = None
            if existing is None:
                existing = self._load_from_disk(spec, with_metrics,
                                                need_model=need_model)
                if existing is not None:
                    self._memory[spec] = existing
            if existing is None:
                pending.append(spec)
        if len(pending) == 1:
            self.run(pending[0], need_model=need_model,
                     with_metrics=with_metrics)
        elif pending:
            self._execute_stacked(pending)
        # Everything is now warm; serve in order (filling metrics/models
        # through the ordinary replay path).
        return [self.run(spec, need_model=need_model,
                         with_metrics=with_metrics) for spec in specs]

    def _execute_stacked(self, specs: list[ExperimentSpec]) -> None:
        """Fit a cell's pending seeds as one stacked program and store
        each seed's artifacts exactly as :meth:`_execute` would."""
        entry = get_entry(specs[0].model)
        data = self.dataset(specs[0].dataset)
        models = [entry.build(spec.profile, spec.override_dict)
                  for spec in specs]
        rngs = [spec.rng(stream=0) for spec in specs]

        control = None
        if self.cache_dir is not None:
            from ..train import TrainControl

            self.cache_dir.mkdir(parents=True, exist_ok=True)
            control = TrainControl(
                checkpoint_path=self.stacked_checkpoint_path(specs),
                min_save_interval=self.checkpoint_interval,
                tag=self._stamp(specs[0]))

        head = specs[0]
        start = time.perf_counter()
        with trace.span("runner.fit_stacked", model=head.model,
                        dataset=head.dataset, stack=len(specs)):
            type(models[0]).fit_stacked(models, data.graph, rngs,
                                        control=control)
        # The stack shares one fit; bill each seed its amortised share,
        # but keep the raw wall clock too so the speedup over K
        # sequential fits is reconstructable from sidecars alone.
        stacked_seconds = time.perf_counter() - start
        fit_seconds = stacked_seconds / len(specs)
        self._m_fits.inc(len(specs), model=head.model)
        self._m_fit_seconds.observe(stacked_seconds, model=head.model)
        self.registry.counter(
            "runner_stacked_fits_total",
            "Seed-stacked fit programs executed").inc(model=head.model)

        for spec, model, rng in zip(specs, models, rngs):
            start = time.perf_counter()
            with trace.span("runner.generate", model=spec.model,
                            dataset=spec.dataset, seed=spec.seed):
                generated = model.generate(rng)
            generate_seconds = time.perf_counter() - start
            self._m_generates.inc(model=spec.model)
            self._m_generate_seconds.observe(generate_seconds,
                                             model=spec.model)
            self._store(spec, RunResult(
                spec=spec, generated=generated, fit_seconds=fit_seconds,
                generate_seconds=generate_seconds, from_cache=False,
                model=model, stacked_fit_seconds=stacked_seconds,
                stacked_size=len(specs)))
        if control is not None:
            Path(control.checkpoint_path).unlink(missing_ok=True)

    def stacked_checkpoint_path(self,
                                specs: Sequence[ExperimentSpec]) -> Path:
        """Cell-level ``.stacked.ckpt.npz`` path for a stacked fit.

        Keyed by the cell plus the ordered seed list, so the same cell
        stacked over the same seeds resumes its checkpoint and any other
        seed set trains separately.
        """
        head = specs[0]
        digest = zlib.crc32(json.dumps(
            [[s.seed for s in specs], head.overrides],
            sort_keys=True, default=str).encode())
        key = (f"{head.model}__{head.dataset}__{head.profile}"
               f"__stack{len(specs)}_{digest:08x}")
        return self.cache_dir / f"{key}.stacked.ckpt.npz"

    # ------------------------------------------------------------------
    def _run_scheduled(self, specs: list[ExperimentSpec], scheduler, *,
                       processes: int | None, need_model: bool,
                       with_metrics: bool) -> list[RunResult]:
        """Drain a spec batch through the distributed job queue.

        Thin adapter over :func:`repro.experiments.sweep.run_sweep`:
        submit, self-host ``processes`` local workers, wait with lease
        recovery, then serve every result as a warm-cache replay (the
        memory cache is pre-populated by the replay runner, so the
        returned results carry models when ``need_model`` is set and
        metrics when ``with_metrics`` is set, with zero fits here).
        """
        from .scheduler import JobQueue
        from .sweep import run_sweep

        if self.cache_dir is None:
            raise ValueError(
                "run_many(scheduler=...) needs a cache_dir: the shared "
                "artifact cache is the only channel through which worker "
                "results come home")
        queue = (scheduler if isinstance(scheduler, JobQueue)
                 else JobQueue(scheduler))
        # Same guard as the process-pool path: a fitted model that can't
        # round-trip through the cache would be fitted in a worker,
        # thrown away, and silently refitted here — run those specs
        # once, in the parent, and schedule only the rest.
        remote = [spec for spec in specs
                  if not need_model or self._model_round_trips(spec)]
        if remote:
            report = run_sweep(
                remote, queue.queue_dir, self.cache_dir,
                workers=2 if processes is None else processes,
                need_model=need_model, with_metrics=with_metrics,
                lease_timeout=queue.lease_timeout,
                max_retries=queue.max_retries,
                allow_surrogate=self.allow_surrogate,
                few_shot_per_class=self.few_shot_per_class)
            report.raise_on_failure()
            # Adopt the replayed results so the order-restoring pass
            # below (and later ``run`` calls) hit the memory cache.
            for spec, result in zip(remote, report.results):
                self._memory[spec] = result
        return [self.run(spec, need_model=need_model,
                         with_metrics=with_metrics) for spec in specs]

    # ------------------------------------------------------------------
    def _model_round_trips(self, spec: ExperimentSpec) -> bool:
        """Whether the spec's fitted model survives the cache round trip.

        Building an unfitted instance is cheap — constructors only
        record hyperparameters — and its class decides serializability.
        """
        entry = get_entry(spec.model)
        return can_serialize(entry.build(spec.profile, spec.override_dict))

    def _execute(self, spec: ExperimentSpec) -> RunResult:
        entry = get_entry(spec.model)
        data = self.dataset(spec.dataset)
        model = entry.build(spec.profile, spec.override_dict)
        self._install_train_control(spec, model)
        rng = spec.rng(stream=0)

        start = time.perf_counter()
        with trace.span("runner.fit", model=spec.model,
                        dataset=spec.dataset, profile=spec.profile,
                        seed=spec.seed):
            if entry.needs_supervision:
                supervision = self.supervision_for(spec)
                model.fit(data.graph, rng, supervision=supervision)
            else:
                model.fit(data.graph, rng)
        fit_seconds = time.perf_counter() - start
        self._m_fits.inc(model=spec.model)
        self._m_fit_seconds.observe(fit_seconds, model=spec.model)

        start = time.perf_counter()
        with trace.span("runner.generate", model=spec.model,
                        dataset=spec.dataset, seed=spec.seed):
            generated = model.generate(rng)
        generate_seconds = time.perf_counter() - start
        self._m_generates.inc(model=spec.model)
        self._m_generate_seconds.observe(generate_seconds, model=spec.model)

        return RunResult(spec=spec, generated=generated,
                         fit_seconds=fit_seconds,
                         generate_seconds=generate_seconds,
                         from_cache=False, model=model)

    def _metrics_for(self, spec: ExperimentSpec,
                     generated: Graph) -> dict:
        data = self.dataset(spec.dataset)
        overall = overall_discrepancy(data.graph, generated,
                                      aspl_sample=_ASPL_SAMPLE,
                                      rng=np.random.default_rng(0))
        metrics = {"overall": overall,
                   "overall_mean": mean_discrepancy(overall)}
        mask, surrogate = data.protected_mask, False
        if mask is None and self.allow_surrogate:
            mask, surrogate = self.supervision_for(spec).protected_mask, True
        if mask is not None:
            prot = protected_discrepancy(data.graph, generated,
                                         np.asarray(mask, dtype=bool),
                                         aspl_sample=_ASPL_SAMPLE,
                                         rng=np.random.default_rng(0))
            metrics["protected"] = prot
            metrics["protected_mean"] = mean_discrepancy(prot)
            # R+ against a degree-derived surrogate group is not
            # comparable to R+ against a shipped protected attribute;
            # consumers must be able to tell them apart.
            metrics["protected_surrogate"] = surrogate
        return metrics

    # ------------------------------------------------------------------
    # Disk cache
    # ------------------------------------------------------------------
    def _stamp(self, spec: ExperimentSpec) -> str:
        """What the artifact actually depended on, beyond the spec name.

        Profile dicts live in the registry and can change between
        versions, and the Runner's own supervision settings shape
        label-aware fits — so cache entries record the *resolved*
        parameters and are treated as misses when they no longer match.
        """
        entry = get_entry(spec.model)
        stamp: dict[str, object] = {
            "params": entry.params(spec.profile, spec.override_dict),
            # shapes label-aware fits and the protected-metrics row of
            # cached metadata, so it must invalidate the entry too
            "allow_surrogate": self.allow_surrogate}
        if entry.needs_supervision:
            stamp["few_shot_per_class"] = self.few_shot_per_class
        return json.dumps(stamp, sort_keys=True, default=str)

    def _paths(self, spec: ExperimentSpec) -> tuple[Path, Path, Path]:
        key = spec.cache_key()
        return (self.cache_dir / f"{key}.npz",
                self.cache_dir / f"{key}.json",
                self.cache_dir / f"{key}.model.npz")

    def checkpoint_path(self, spec: ExperimentSpec) -> Path | None:
        """Where ``spec``'s mid-fit training checkpoint lives (if any)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.cache_key()}.ckpt.npz"

    def _install_train_control(self, spec: ExperimentSpec, model) -> None:
        """Arm a fit with checkpoint/resume through the artifact cache.

        Trainer-backed models pick the control up inside ``fit``; models
        without a training loop (ER, BA) simply never read it.  The
        control's tag is the Runner's resolved-parameter stamp, so a
        checkpoint written under different hyperparameters or
        supervision settings is ignored, exactly like a stale cache
        entry.
        """
        if self.cache_dir is None:
            return
        from ..train import TrainControl

        self.cache_dir.mkdir(parents=True, exist_ok=True)
        model.train_control = TrainControl(
            checkpoint_path=self.checkpoint_path(spec),
            min_save_interval=self.checkpoint_interval,
            tag=self._stamp(spec))

    def _ensure_metrics(self, spec: ExperimentSpec,
                        result: RunResult) -> None:
        """Attach metrics to ``result``, reusing the sidecar when valid."""
        if result.metrics is None:
            result.metrics = (self._cached_metrics(spec)
                              or self._metrics_for(spec, result.generated))
            self._write_metadata(spec, result)

    def _cached_metrics(self, spec: ExperimentSpec) -> dict | None:
        """Metrics recorded in the cache sidecar, if still valid."""
        if self.cache_dir is None:
            return None
        _, meta_path, _ = self._paths(spec)
        if not meta_path.exists():
            return None
        try:
            prior = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (prior.get("format") == CACHE_FORMAT
                and prior.get("stamp") == self._stamp(spec)):
            return prior.get("metrics")
        return None

    def _load_from_disk(self, spec: ExperimentSpec, with_metrics: bool,
                        need_model: bool = False) -> RunResult | None:
        if self.cache_dir is None:
            return None
        graph_path, meta_path, model_path = self._paths(spec)
        if not graph_path.exists() or not meta_path.exists():
            return None
        if need_model and not model_path.exists():
            return None  # artifact-only entry can't satisfy need_model
        import zipfile

        try:
            metadata = json.loads(meta_path.read_text())
            if (metadata.get("format") != CACHE_FORMAT
                    or metadata.get("stamp") != self._stamp(spec)):
                return None
            generated = load_graph(graph_path)
            model = (load_model(model_path, self.dataset(spec.dataset).graph)
                     if need_model else None)
        except (ValueError, KeyError, OSError, json.JSONDecodeError,
                zipfile.BadZipFile):
            return None  # corrupt entry: treat as a miss and recompute
        stacked = metadata.get("stacked_fit_seconds")
        stacked_size = metadata.get("stacked_size")
        result = RunResult(spec=spec, generated=generated,
                           fit_seconds=float(metadata["fit_seconds"]),
                           generate_seconds=float(
                               metadata["generate_seconds"]),
                           from_cache=True, model=model,
                           metrics=metadata.get("metrics"),
                           stacked_fit_seconds=(float(stacked)
                                                if stacked is not None
                                                else None),
                           stacked_size=(int(stacked_size)
                                         if stacked_size is not None
                                         else None))
        if with_metrics:
            self._ensure_metrics(spec, result)
        return result

    def _store(self, spec: ExperimentSpec, result: RunResult) -> None:
        self._memory[spec] = result
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        graph_path, _, model_path = self._paths(spec)
        save_graph(result.generated, graph_path)
        if result.model is not None and can_serialize(result.model):
            # Persisting the fitted model makes the warm cache able to
            # satisfy need_model=True runs with zero refits.  Custom
            # registry models outside the serialisable set degrade to
            # graph-only caching (need_model then refits as before).
            # Stored uncompressed so the serving daemon's model LRU can
            # mmap the weights instead of copying them per process
            # (load_model(mmap=True); weights barely compress anyway).
            save_model(result.model, model_path, compress=False)
        self._write_metadata(spec, result)
        # The finished artifacts supersede any mid-fit checkpoint.
        self.checkpoint_path(spec).unlink(missing_ok=True)

    def _write_metadata(self, spec: ExperimentSpec,
                        result: RunResult) -> None:
        if self.cache_dir is None:
            return
        _, meta_path, _ = self._paths(spec)
        metadata = {
            "format": CACHE_FORMAT,
            "stamp": self._stamp(spec),
            "spec": dataclasses.asdict(spec),
            "fit_seconds": result.fit_seconds,
            "generate_seconds": result.generate_seconds,
            "num_nodes": result.generated.num_nodes,
            "num_edges": result.generated.num_edges,
            "metrics": result.metrics,
        }
        if result.stacked_fit_seconds is not None:
            # Raw wall clock of the whole stacked fit (fit_seconds above
            # is the amortised share): speedup = K * mean(sequential
            # fit_seconds) / stacked_fit_seconds, from sidecars alone.
            metadata["stacked_fit_seconds"] = result.stacked_fit_seconds
            metadata["stacked_size"] = result.stacked_size
        if metadata["metrics"] is None:
            # e.g. a need_model=True refit: don't erase metrics a prior
            # with_metrics run already paid for on the same artifact.
            metadata["metrics"] = self._cached_metrics(spec)
        meta_path.write_text(json.dumps(metadata, indent=2, default=str))


def _run_in_worker(payload) -> RunResult:
    """Top-level ``run_many`` worker (must be picklable)."""
    (cache_dir, allow_surrogate, few_shot, checkpoint_interval, spec,
     with_metrics, need_model) = payload
    runner = Runner(cache_dir=cache_dir, allow_surrogate=allow_surrogate,
                    few_shot_per_class=few_shot,
                    checkpoint_interval=checkpoint_interval)
    result = runner.run(spec, with_metrics=with_metrics,
                        need_model=need_model)
    # Fitted models hold autograd state; keep the payload lean and
    # picklable by shipping only the artifacts — with need_model the
    # model travels through the shared cache as a save_model archive,
    # from which the parent restores it.
    result.model = None
    return result
