"""Sweep helpers: parameter grids → deduplicated spec batches → a
scheduled multi-worker run.

:func:`expand` is the general cartesian-product engine — every axis is
a list of values, spec axes (``model`` / ``dataset`` / ``profile`` /
``seed``) map onto :class:`ExperimentSpec` fields and every other axis
becomes a hyperparameter override.  :func:`grid` is the benchmark-shaped
front door (models × datasets × profiles × seeds with per-model
overrides).  Both return batches deduplicated by cache key, so aliases
(``"ER"`` vs ``"er"``) and repeated axis values cannot enqueue the same
experiment twice.

:func:`run_sweep` drives a whole sweep end to end: submit the batch to
a :class:`~repro.experiments.scheduler.JobQueue`, optionally self-host
N local worker processes, poll with recovery until the queue drains,
and replay the results out of the shared artifact cache into a
:class:`SweepReport`.  Workers on other hosts pointing at the same
queue/cache directories participate transparently.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..registry import get_entry
from .runner import ExperimentSpec, Runner, RunResult
from .scheduler import JobQueue, LocalWorkerPool, QueueError
from .supervision import FEW_SHOT_PER_CLASS

__all__ = ["expand", "grid", "run_sweep", "stack_cells", "SweepReport"]

#: axes that map onto ExperimentSpec fields; all other axes are
#: hyperparameter-override axes
_SPEC_AXES = ("model", "dataset", "profile", "seed")


def _as_values(value) -> list:
    """Normalise one axis to a list of values (scalars become [scalar])."""
    if isinstance(value, (str, bytes, Mapping)) \
            or not isinstance(value, (Sequence, set, frozenset, range)):
        return [value]
    values = list(value)
    if not values:
        raise ValueError("sweep axes must not be empty")
    return values


def expand(axes: Mapping[str, object]) -> list[ExperimentSpec]:
    """Cartesian product of named axes → deduplicated spec batch.

    ``axes`` maps axis names to a value or a sequence of values.  The
    axes ``model`` and ``dataset`` are required; ``profile`` defaults to
    ``"paper"`` and ``seed`` to ``0``.  Every other axis varies a
    hyperparameter override, so e.g.::

        expand({"model": ["fairgen", "taggen"], "dataset": "BLOG",
                "seed": range(3), "self_paced_cycles": [2, 4]})

    yields 2 × 1 × 3 × 2 = 12 specs (fewer if any collapse to the same
    cache key).  Specs are validated eagerly: unknown models or profiles
    raise here, not minutes into a fleet run.
    """
    for required in ("model", "dataset"):
        if required not in axes:
            raise ValueError(f"sweep axes must include {required!r}")
    named = {"profile": ["paper"], "seed": [0]}
    named.update({k: _as_values(v) for k, v in axes.items()})
    override_axes = [k for k in named if k not in _SPEC_AXES]

    specs: list[ExperimentSpec] = []
    seen: set[str] = set()
    axis_order = [*_SPEC_AXES, *override_axes]
    for values in product(*(named[k] for k in axis_order)):
        point = dict(zip(axis_order, values))
        spec = ExperimentSpec(
            model=point["model"], dataset=point["dataset"],
            profile=point["profile"], seed=int(point["seed"]),
            overrides={k: point[k] for k in override_axes})
        get_entry(spec.model).params(spec.profile, spec.override_dict)
        key = spec.cache_key()
        if key not in seen:
            seen.add(key)
            specs.append(spec)
    return specs


def grid(models, datasets, *, profiles="paper", seeds=0,
         overrides: Mapping[str, object] | None = None,
         per_model: Mapping[str, Mapping[str, object]] | None = None
         ) -> list[ExperimentSpec]:
    """The benchmark-shaped grid: models × datasets × profiles × seeds.

    ``overrides`` adds hyperparameter axes shared by every model (each
    value may itself be a list — a per-axis sweep).  ``per_model`` maps
    a model name to a *fixed* override dict applied only to that model's
    specs, e.g. ``{"fairgen": {"self_paced_cycles": 2}}``.  The result
    is deduplicated by cache key across the whole batch.
    """
    per_model = {get_entry(name).name: dict(extra)
                 for name, extra in (per_model or {}).items()}
    specs: list[ExperimentSpec] = []
    seen: set[str] = set()
    for model in _as_values(models):
        axes: dict[str, object] = {"model": model, "dataset": datasets,
                                   "profile": profiles, "seed": seeds}
        axes.update(overrides or {})
        extra = per_model.get(get_entry(model).name, {})
        for spec in expand(axes):
            if extra:
                spec = ExperimentSpec(
                    model=spec.model, dataset=spec.dataset,
                    profile=spec.profile, seed=spec.seed,
                    overrides={**spec.override_dict, **extra})
                get_entry(spec.model).params(spec.profile,
                                             spec.override_dict)
            key = spec.cache_key()
            if key not in seen:
                seen.add(key)
                specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# Sweep orchestration
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` call.

    ``results`` aligns with ``specs`` (``None`` for failed jobs); every
    non-``None`` entry was replayed out of the shared artifact cache, so
    holding the report means holding the full sweep with zero refits.
    """

    specs: list[ExperimentSpec]
    job_ids: list[str]
    results: list[RunResult | None]
    #: job id → terminal failure message (worker traceback)
    failures: dict[str, str] = field(default_factory=dict)
    #: (job_id, worker_id) per actual model fit, from the queue's audit log
    fits: list[tuple[str, str]] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def completed(self) -> int:
        return sum(r is not None for r in self.results)

    @property
    def duplicate_fits(self) -> int:
        """Fits beyond one per job — 0 on a healthy fresh sweep."""
        job_ids = [job for job, _ in self.fits]
        return len(job_ids) - len(set(job_ids))

    def raise_on_failure(self) -> "SweepReport":
        if self.failures:
            detail = "\n".join(f"--- {job} ---\n{msg}"
                               for job, msg in self.failures.items())
            raise QueueError(f"{len(self.failures)} sweep job(s) failed "
                             f"terminally:\n{detail}")
        return self

    def scoreboard(self) -> list[dict]:
        """Seed-averaged metrics per model × dataset × profile cell.

        Aggregates ``overall_mean`` — and ``protected_mean`` where the
        runs carry it — across every completed seed of each
        (model, dataset, profile) cell into ``mean ± std`` rows::

            {"model": "FairGen", "dataset": "BLOG", "profile": "bench",
             "seeds": 3, "overall_mean": ..., "overall_std": ...,
             "protected_mean": ..., "protected_std": ...,
             "protected_surrogate": False}

        Results without metrics (the sweep ran without
        ``with_metrics=True``) and failed jobs are skipped; the std is
        the population std over seeds (0.0 for a single seed).  Specs
        that differ in hyperparameter overrides form *separate* cells —
        a sweep with an override axis must never average across
        configurations and call it seed variance — with the cell's
        overrides echoed in the row.  Rows come back sorted by
        (model, dataset, profile, overrides) — the shape the
        ``repro sweep`` summary table prints directly.
        """
        groups: dict[tuple, list[RunResult]] = {}
        for spec, result in zip(self.specs, self.results):
            if result is None or not result.metrics:
                continue
            key = (spec.model, spec.dataset, spec.profile, spec.overrides)
            groups.setdefault(key, []).append(result)
        rows: list[dict] = []
        ordered = sorted(groups.items(),
                         key=lambda kv: (*kv[0][:3], repr(kv[0][3])))
        for (model, dataset, profile, overrides), results in ordered:
            overall = [r.metrics["overall_mean"] for r in results]
            row: dict = {"model": get_entry(model).display_name,
                         "dataset": dataset, "profile": profile,
                         "overrides": dict(overrides),
                         "seeds": len(results),
                         "overall_mean": float(np.mean(overall)),
                         "overall_std": float(np.std(overall))}
            protected = [r.metrics["protected_mean"] for r in results
                         if "protected_mean" in r.metrics]
            if protected:
                row["protected_mean"] = float(np.mean(protected))
                row["protected_std"] = float(np.std(protected))
                row["protected_surrogate"] = any(
                    r.metrics.get("protected_surrogate") for r in results)
            rows.append(row)
        return rows


def stack_cells(specs: Sequence[ExperimentSpec]
                ) -> list[list[ExperimentSpec]]:
    """Group a spec batch into seed-stackable grid cells.

    Returns the sub-batches (in first-appearance order) whose members
    differ only in seed and have at least two seeds — the candidate
    cells for a :meth:`Runner.run_stacked` fit.  Eligibility of the
    *model* (``supports_stacked_fit``, supervision) is the Runner's
    call; this is pure grouping.
    """
    groups: dict[tuple, list[ExperimentSpec]] = {}
    for spec in specs:
        key = (spec.model, spec.dataset, spec.profile, spec.overrides)
        groups.setdefault(key, []).append(spec)
    return [cell for cell in groups.values() if len(cell) >= 2]


def run_sweep(specs: Iterable[ExperimentSpec],
              queue_dir: str | os.PathLike,
              cache_dir: str | os.PathLike, *,
              workers: int = 2,
              need_model: bool = False,
              with_metrics: bool = False,
              stack_seeds: bool = False,
              lease_timeout: float | None = None,
              max_retries: int | None = None,
              poll: float = 0.25,
              timeout: float | None = None,
              allow_surrogate: bool = True,
              few_shot_per_class: int = FEW_SHOT_PER_CLASS,
              progress: Callable[[dict[str, int]], None] | None = None
              ) -> SweepReport:
    """Submit a spec batch and drain it with a local worker fleet.

    With ``workers == 0`` nothing is self-hosted: the call submits and
    then waits for external workers (``repro worker <queue_dir>`` on any
    host sharing the directories) to drain the queue.  ``progress``
    receives the queue state counts once per poll cycle.

    ``stack_seeds`` collapses the seed axis of eligible grid cells
    before submission: each cell whose model supports stacked fits
    trains its K seeds as ONE vmap-style tensor program
    (:meth:`Runner.run_stacked`), warming the shared artifact cache
    with per-seed artifacts under their ordinary cache keys — the
    submitted jobs then replay from cache, so workers perform zero
    refits for stacked cells.  Ineligible cells are untouched and
    train per-seed in the fleet as before.

    Returns a :class:`SweepReport`; terminal job failures are reported
    there rather than raised (call :meth:`SweepReport.raise_on_failure`
    for raising behaviour).
    """
    specs = list(specs)
    queue = JobQueue(queue_dir, lease_timeout=lease_timeout,
                     max_retries=max_retries)
    started = time.monotonic()
    if stack_seeds:
        stacker = Runner(cache_dir=cache_dir,
                         allow_surrogate=allow_surrogate,
                         few_shot_per_class=few_shot_per_class)
        for cell in stack_cells(specs):
            if stacker.stackable(cell):
                stacker.run_stacked(cell, need_model=need_model,
                                    with_metrics=with_metrics)
    queue.submit(specs, need_model=need_model, with_metrics=with_metrics)
    # Per-spec ids (submit deduplicates, so its return value can be
    # shorter than ``specs``; the report stays aligned regardless).
    job_ids = [spec.cache_key() for spec in specs]

    pool = None
    if workers > 0:
        pool = LocalWorkerPool(queue_dir, cache_dir, workers,
                               allow_surrogate=allow_surrogate,
                               few_shot_per_class=few_shot_per_class).start()
    try:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            queue.recover()
            counts = queue.counts()
            if progress is not None:
                progress(counts)
            if not counts["pending"] and not counts["claimed"]:
                break
            if pool is not None and pool.alive_count() == 0:
                # Workers only exit once the queue drains, so take a
                # fresh snapshot before declaring the fleet dead — the
                # final completion may have landed after the read above.
                queue.recover()
                if queue.drained():
                    break
                raise QueueError(
                    "all local sweep workers exited but the queue is not "
                    f"drained: {counts} — inspect "
                    f"{os.fspath(queue_dir)}/failed/ and worker logs")
            if deadline is not None and time.monotonic() > deadline:
                raise QueueError(f"sweep did not drain within {timeout:g}s: "
                                 f"{counts}")
            time.sleep(poll)
    finally:
        if pool is not None:
            pool.terminate()

    # Replay everything out of the shared cache: zero fits here.
    replay = Runner(cache_dir=cache_dir, allow_surrogate=allow_surrogate,
                    few_shot_per_class=few_shot_per_class)
    failures: dict[str, str] = {}
    results: list[RunResult | None] = []
    for spec, job_id in zip(specs, job_ids):
        payload = queue.payload(job_id) or {}
        if payload.get("state") == "failed":
            failures[job_id] = str(payload.get("failure", "unknown failure"))
            results.append(None)
        else:
            results.append(replay.run(spec, need_model=need_model,
                                      with_metrics=with_metrics))
    return SweepReport(specs=specs, job_ids=job_ids, results=results,
                       failures=failures, fits=queue.fit_log(),
                       seconds=time.monotonic() - started)
