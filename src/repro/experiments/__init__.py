"""Unified experiment API: registry-built models, uniform supervision,
and a spec-driven Runner with a disk-backed artifact cache.

This package is the one public fit → generate path of the repository.
The CLI, every benchmark and every example build models through
:mod:`repro.registry` and execute them through :class:`Runner`::

    from repro.experiments import ExperimentSpec, Runner

    runner = Runner(cache_dir="~/.cache/repro")
    result = runner.run(ExperimentSpec(model="fairgen", dataset="BLOG",
                                       profile="bench", seed=0))
    result.generated        # the synthetic Graph
    result.total_seconds    # fit + generate wall clock

A second ``run`` of an identical spec against a warm ``cache_dir``
replays the artifact from disk and performs zero model fitting — across
processes, not just within one.

For batches, :mod:`repro.experiments.sweep` expands parameter grids
into deduplicated spec batches and :mod:`repro.experiments.scheduler`
drains them through a filesystem-backed fault-tolerant job queue that
any number of worker processes — local or on other hosts sharing the
queue/cache directories — consume cooperatively::

    from repro.experiments import sweep

    specs = sweep.grid(["fairgen", "taggen"], ["BLOG", "ACM"],
                       profiles="bench", seeds=range(3))
    report = sweep.run_sweep(specs, "/shared/queue", "/shared/cache",
                             workers=4, with_metrics=True)
"""

from ..registry import (ModelEntry, benchmark_model_names, create_model,
                        display_name, get_entry, model_names, profile_names,
                        register_model)
from . import sweep
from .runner import ExperimentSpec, Runner, RunResult
from .scheduler import (Job, JobQueue, LocalWorkerPool, QueueError, Worker,
                        run_worker)
from .supervision import FEW_SHOT_PER_CLASS, Supervision, few_shot_labels
from .sweep import SweepReport, run_sweep

__all__ = [
    "ExperimentSpec", "Runner", "RunResult",
    "Supervision", "few_shot_labels", "FEW_SHOT_PER_CLASS",
    "ModelEntry", "register_model", "get_entry", "create_model",
    "model_names", "benchmark_model_names", "display_name",
    "profile_names",
    "Job", "JobQueue", "QueueError", "Worker", "LocalWorkerPool",
    "run_worker", "sweep", "SweepReport", "run_sweep",
]
