"""Multinomial logistic regression and k-fold evaluation.

The data-augmentation case study (Section III-D) "employs a logistic
regression classifier as our base model, which is trained on the learned
graph embedding of the original graph via node2vec", with a 90/10
ten-fold split.  sklearn is unavailable, so we implement the classifier
(full-batch gradient descent with L2 regularisation) and the fold logic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression", "k_fold_indices", "accuracy",
           "cross_validated_accuracy"]


class LogisticRegression:
    """Multinomial logistic regression trained by gradient descent."""

    def __init__(self, num_classes: int, l2: float = 1e-3, lr: float = 0.5,
                 epochs: int = 300):
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes
        self.l2 = l2
        self.lr = lr
        self.epochs = epochs
        self.weights: np.ndarray | None = None
        self.bias: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, d) matching y")
        n, d = x.shape
        self.weights = np.zeros((d, self.num_classes))
        self.bias = np.zeros(self.num_classes)
        onehot = np.zeros((n, self.num_classes))
        onehot[np.arange(n), y] = 1.0
        for _ in range(self.epochs):
            probs = self._softmax(x @ self.weights + self.bias)
            grad_logits = (probs - onehot) / n
            grad_w = x.T @ grad_logits + self.l2 * self.weights
            grad_b = grad_logits.sum(axis=0)
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
        return self

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("classifier not fitted")
        return self._softmax(np.asarray(x) @ self.weights + self.bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)


def accuracy(predicted: np.ndarray, actual: np.ndarray) -> float:
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError("shape mismatch")
    return float((predicted == actual).mean())


def k_fold_indices(n: int, k: int,
                   rng: np.random.Generator) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train, test) index pairs covering all n samples."""
    if k < 2 or k > n:
        raise ValueError("k must be in [2, n]")
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    splits = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


def cross_validated_accuracy(features: np.ndarray, labels: np.ndarray,
                             num_classes: int, rng: np.random.Generator,
                             k: int = 10) -> tuple[float, float]:
    """Mean and standard deviation of k-fold test accuracy (Fig. 6 bars)."""
    labels = np.asarray(labels, dtype=np.int64)
    scores = []
    for train, test in k_fold_indices(len(labels), k, rng):
        clf = LogisticRegression(num_classes).fit(features[train],
                                                  labels[train])
        scores.append(accuracy(clf.predict(features[test]), labels[test]))
    return float(np.mean(scores)), float(np.std(scores))
