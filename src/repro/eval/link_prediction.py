"""Link-prediction evaluation of generative models (NetGAN's protocol).

A generator that has learned the graph's structure should assign held-out
true edges higher plausibility than random non-edges.  We score candidate
pairs by embedding dot products (node2vec on the generated graph) and
report ROC-AUC and average precision — including the *group-conditioned*
AUC on edges incident to the protected group, which quantifies
representation disparity at the link level.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["roc_auc", "average_precision", "sample_non_edges",
           "link_prediction_scores", "LinkPredictionResult"]

from dataclasses import dataclass


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    num_pos = int(labels.sum())
    num_neg = labels.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("need both positive and negative examples")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # Average ranks over tied scores for an exact Mann-Whitney statistic.
    sorted_scores = scores[order]
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i: j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    return float((rank_sum - num_pos * (num_pos + 1) / 2.0)
                 / (num_pos * num_neg))


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if not labels.any():
        raise ValueError("need at least one positive example")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    cumulative_hits = np.cumsum(sorted_labels)
    precision = cumulative_hits / np.arange(1, labels.size + 1)
    return float(precision[sorted_labels].mean())


def sample_non_edges(graph: Graph, count: int,
                     rng: np.random.Generator) -> np.ndarray:
    """``count`` distinct node pairs that are not edges of ``graph``."""
    non_edges: set[tuple[int, int]] = set()
    n = graph.num_nodes
    max_possible = n * (n - 1) // 2 - graph.num_edges
    if count > max_possible:
        raise ValueError("not enough non-edges in the graph")
    while len(non_edges) < count:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair not in non_edges and not graph.has_edge(*pair):
            non_edges.add(pair)
    return np.array(sorted(non_edges), dtype=np.int64)


@dataclass(frozen=True)
class LinkPredictionResult:
    """AUC / AP overall and restricted to protected-incident pairs."""

    auc: float
    ap: float
    protected_auc: float | None = None


def link_prediction_scores(original: Graph, embeddings: np.ndarray,
                           rng: np.random.Generator,
                           holdout_fraction: float = 0.1,
                           protected_mask: np.ndarray | None = None) -> LinkPredictionResult:
    """Score held-out edges vs sampled non-edges by embedding dot product.

    ``embeddings`` are typically node2vec vectors learned on a *generated*
    graph — high AUC means the generator reproduced the original's link
    structure well enough to predict unseen edges.
    """
    if not 0.0 < holdout_fraction <= 0.5:
        raise ValueError("holdout_fraction must be in (0, 0.5]")
    edges = original.edges()
    num_holdout = max(1, int(round(holdout_fraction * len(edges))))
    chosen = rng.choice(len(edges), size=num_holdout, replace=False)
    positives = edges[chosen]
    negatives = sample_non_edges(original, num_holdout, rng)

    pairs = np.concatenate([positives, negatives])
    labels = np.concatenate([np.ones(num_holdout, dtype=bool),
                             np.zeros(num_holdout, dtype=bool)])
    scores = (embeddings[pairs[:, 0]] * embeddings[pairs[:, 1]]).sum(axis=1)

    protected_auc = None
    if protected_mask is not None:
        protected_mask = np.asarray(protected_mask, dtype=bool)
        incident = protected_mask[pairs[:, 0]] | protected_mask[pairs[:, 1]]
        if labels[incident].any() and (~labels[incident]).any():
            protected_auc = roc_auc(scores[incident], labels[incident])
    return LinkPredictionResult(roc_auc(scores, labels),
                                average_precision(scores, labels),
                                protected_auc)
