"""Distribution-level graph comparison via maximum mean discrepancy.

The Table II statistics compare scalar summaries; MMD over per-node
statistic *distributions* (degree, clustering, walk lengths) is the
finer-grained comparison popularised by GraphRNN's evaluation protocol
and is a natural extension of the paper's Figure 4/5 study.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..graph.metrics import local_clustering_profile

__all__ = [
    "gaussian_mmd",
    "degree_histogram",
    "degree_distribution_mmd",
    "clustering_distribution_mmd",
]


def gaussian_mmd(x: np.ndarray, y: np.ndarray,
                 bandwidth: float | None = None) -> float:
    """Unbiased-ish MMD^2 estimate with a Gaussian kernel on 1-D samples.

    ``bandwidth`` defaults to the median pairwise distance of the pooled
    samples (the median heuristic).  Returns a non-negative scalar;
    0 means the samples are indistinguishable under the kernel.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    if bandwidth is None:
        pooled = np.concatenate([x, y])
        dists = np.abs(pooled[:, None] - pooled[None, :])
        positive = dists[dists > 0]
        bandwidth = float(np.median(positive)) if positive.size else 1.0
    gamma = 1.0 / (2.0 * bandwidth ** 2 + 1e-12)

    def kernel_mean(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.exp(-gamma * (a[:, None] - b[None, :]) ** 2).mean())

    mmd_sq = kernel_mean(x, x) + kernel_mean(y, y) - 2 * kernel_mean(x, y)
    return max(0.0, mmd_sq)


def degree_histogram(graph: Graph, max_degree: int | None = None) -> np.ndarray:
    """Normalised degree histogram (probability per degree value)."""
    degrees = graph.degrees.astype(np.int64)
    length = int(max_degree if max_degree is not None
                 else (degrees.max() if degrees.size else 0)) + 1
    hist = np.bincount(degrees, minlength=length)[:length]
    total = hist.sum()
    return hist / total if total else hist.astype(np.float64)


def degree_distribution_mmd(a: Graph, b: Graph) -> float:
    """MMD between the two graphs' per-node degree samples."""
    return gaussian_mmd(a.degrees, b.degrees)


def clustering_distribution_mmd(a: Graph, b: Graph) -> float:
    """MMD between the per-node local clustering coefficient samples."""

    return gaussian_mmd(local_clustering_profile(a),
                        local_clustering_profile(b))
