"""Data-augmentation case study (Section III-D, Figure 6).

Procedure, following the paper:

1. learn node2vec embeddings of the original graph and record the 10-fold
   logistic-regression accuracy ("No Augmentation");
2. let a fitted generative model propose a synthetic graph; take its
   highest-support *new* edges (absent from the original) and insert 5%
   more edges into the original graph;
3. re-run node2vec + logistic regression on the augmented graph.

FairGen's label-informed generator proposes intra-class edges far more
often than unsupervised baselines, which is where its up-to-17% accuracy
gain comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..embedding import Node2VecConfig, node2vec_embedding
from ..graph import Graph
from ..models.base import GraphGenerativeModel
from .classification import cross_validated_accuracy

__all__ = ["AugmentationResult", "augment_graph", "insert_edges",
           "augmentation_study"]


def insert_edges(original: Graph, edges: np.ndarray) -> Graph:
    """Return a copy of ``original`` with the given (u, v) pairs added."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return original
    combined = np.concatenate([original.edges(), edges], axis=0)
    return Graph.from_edges(original.num_nodes, combined)


@dataclass(frozen=True)
class AugmentationResult:
    """Accuracy of a model's augmentation vs the un-augmented baseline."""

    model_name: str
    baseline_accuracy: float
    baseline_std: float
    augmented_accuracy: float
    augmented_std: float

    @property
    def improvement(self) -> float:
        """Relative accuracy improvement over no augmentation."""
        if self.baseline_accuracy == 0:
            return 0.0
        return (self.augmented_accuracy - self.baseline_accuracy) \
            / self.baseline_accuracy


def augment_graph(original: Graph, generated: Graph,
                  fraction: float = 0.05) -> Graph:
    """Insert ``fraction`` * m new edges proposed by the generated graph.

    New edges are those present in ``generated`` but not in ``original``;
    if the generator proposes fewer novel edges than the budget, all of
    them are inserted.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    budget = max(1, int(round(fraction * original.num_edges)))
    novel = (generated.adjacency - generated.adjacency.multiply(
        original.adjacency))
    novel = sp.triu(novel, k=1).tocoo()
    take = min(budget, novel.nnz)
    if take == 0:
        return original
    # Deterministic order: novel edges sorted by (row, col).
    order = np.lexsort((novel.col, novel.row))[:take]
    extra = np.column_stack([novel.row[order], novel.col[order]])
    combined = np.concatenate([original.edges(), extra], axis=0)
    return Graph.from_edges(original.num_nodes, combined)


def augmentation_study(original: Graph, labels: np.ndarray,
                       num_classes: int, model: GraphGenerativeModel,
                       rng: np.random.Generator,
                       fraction: float = 0.05,
                       embed_config: Node2VecConfig | None = None,
                       folds: int = 10) -> AugmentationResult:
    """Run the full Figure 6 pipeline for one fitted model."""
    if not model.is_fitted:
        raise ValueError("model must be fitted on the original graph first")
    config = embed_config or Node2VecConfig()
    base_features = node2vec_embedding(original, config, rng)
    base_acc, base_std = cross_validated_accuracy(
        base_features, labels, num_classes, rng, k=folds)

    budget = max(1, int(round(fraction * original.num_edges)))
    proposals = model.propose_edges(budget, rng)
    augmented = insert_edges(original, proposals)
    aug_features = node2vec_embedding(augmented, config, rng)
    aug_acc, aug_std = cross_validated_accuracy(
        aug_features, labels, num_classes, rng, k=folds)

    return AugmentationResult(model.name, base_acc, base_std,
                              aug_acc, aug_std)
