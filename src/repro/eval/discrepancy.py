"""Discrepancy measures of Section III-A (Eqs. 15 and 16).

``R(G, G~, f) = |f(G) - f(G~)| / |f(G)|`` for each of the nine Table II
statistics ``f``; the protected variant ``R+`` evaluates ``f`` on the
1-hop ego networks of the protected group in both graphs.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..graph import metrics as gm

__all__ = ["relative_discrepancy", "overall_discrepancy",
           "protected_discrepancy", "mean_discrepancy"]


def relative_discrepancy(original: float, generated: float) -> float:
    """``|f(G) - f(G~)| / |f(G)|``, with conventions for edge cases.

    When the original statistic is 0 the relative error is 0 if the
    generated one matches and ``inf`` otherwise; NaN statistics (e.g. PLE
    on an empty graph) propagate to NaN.
    """
    if np.isnan(original) or np.isnan(generated):
        return float("nan")
    if original == 0.0:
        return 0.0 if generated == 0.0 else float("inf")
    return abs(original - generated) / abs(original)


def overall_discrepancy(original: Graph, generated: Graph,
                        aspl_sample: int | None = None,
                        rng: np.random.Generator | None = None) -> dict[str, float]:
    """Eq. 15 for all nine metrics: name -> R value."""
    f_orig = gm.all_metrics(original, aspl_sample, rng)
    f_gen = gm.all_metrics(generated, aspl_sample, rng)
    return {name: relative_discrepancy(f_orig[name], f_gen[name])
            for name in gm.METRIC_NAMES}


def protected_discrepancy(original: Graph, generated: Graph,
                          protected_mask: np.ndarray,
                          aspl_sample: int | None = None,
                          rng: np.random.Generator | None = None) -> dict[str, float]:
    """Eq. 16: discrepancy on the protected group's 1-hop ego networks.

    "These subgraphs are the 1-hop ego network with the anchor nodes from
    the protected group vertices" — both graphs are reduced to the
    neighborhood of ``S+`` before measuring.
    """
    anchors = np.flatnonzero(np.asarray(protected_mask, dtype=bool))
    if anchors.size == 0:
        raise ValueError("protected group is empty")
    sub_orig, _ = original.ego_network(anchors)
    sub_gen, _ = generated.ego_network(anchors)
    f_orig = gm.all_metrics(sub_orig, aspl_sample, rng)
    f_gen = gm.all_metrics(sub_gen, aspl_sample, rng)
    return {name: relative_discrepancy(f_orig[name], f_gen[name])
            for name in gm.METRIC_NAMES}


def mean_discrepancy(values: dict[str, float]) -> float:
    """Mean over the finite metric discrepancies (summary scalar)."""
    finite = [v for v in values.values() if np.isfinite(v)]
    if not finite:
        return float("nan")
    return float(np.mean(finite))
