"""Evaluation harness: discrepancy, classification, augmentation."""

from .discrepancy import (mean_discrepancy, overall_discrepancy,
                          protected_discrepancy, relative_discrepancy)
from .classification import (LogisticRegression, accuracy,
                             cross_validated_accuracy, k_fold_indices)
from .augmentation import (AugmentationResult, augment_graph,
                           augmentation_study, insert_edges)
from .distribution import (clustering_distribution_mmd, degree_distribution_mmd,
                           degree_histogram, gaussian_mmd)
from .link_prediction import (LinkPredictionResult, average_precision,
                              link_prediction_scores, roc_auc,
                              sample_non_edges)

__all__ = [
    "relative_discrepancy", "overall_discrepancy", "protected_discrepancy",
    "mean_discrepancy",
    "LogisticRegression", "accuracy", "k_fold_indices",
    "cross_validated_accuracy",
    "AugmentationResult", "augment_graph", "insert_edges",
    "augmentation_study",
    "gaussian_mmd", "degree_histogram", "degree_distribution_mmd",
    "clustering_distribution_mmd",
    "roc_auc", "average_precision", "sample_non_edges",
    "link_prediction_scores", "LinkPredictionResult",
]
