"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``   print Table I-style statistics of the bundled datasets
``models``     print the model registry (names, profiles, supervision)
``generate``   fit a model on a dataset and report generation quality
``evaluate``   overall + protected discrepancy of a fitted model
``augment``    run the Figure 6 data-augmentation study

Every model run routes through the experiment API
(:class:`repro.experiments.Runner`): models are built from the registry
under a named hyperparameter profile (``--profile paper|bench|smoke``),
unlabeled datasets receive surrogate supervision for label-aware models
(disable with ``--no-surrogate-labels``), and ``--cache-dir`` enables the
disk-backed artifact cache so repeated invocations skip fitting.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .data import (dataset_names, dataset_statistics, labeled_dataset_names,
                   load_dataset)
from .eval import augmentation_study
from .experiments import ExperimentSpec, Runner
from .graph.metrics import METRIC_NAMES
from .registry import get_entry, model_names, profile_names
from .utils import format_table

__all__ = ["main", "build_parser"]

MODEL_CHOICES = sorted(model_names())


def _add_run_arguments(cmd: argparse.ArgumentParser,
                       datasets: list[str] | None = None) -> None:
    """Arguments shared by every command that executes a model run."""
    cmd.add_argument("--dataset", required=True,
                     choices=datasets or dataset_names())
    cmd.add_argument("--model", required=True, choices=MODEL_CHOICES)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument("--profile", choices=profile_names(), default="paper",
                     help="hyperparameter profile from the model registry")
    cmd.add_argument("--cycles", type=int, default=None,
                     help="override FairGen self-paced cycles")
    cmd.add_argument("--generator-steps", type=int, default=None,
                     help="override FairGen generator steps per cycle")
    cmd.add_argument("--cache-dir", default=None,
                     help="directory of the disk-backed artifact cache; "
                          "warm entries skip fitting entirely")
    cmd.add_argument("--surrogate-labels", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="derive degree-based surrogate supervision for "
                          "unlabeled datasets when a label-aware model "
                          "is requested (default: on)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FairGen reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print dataset statistics")
    sub.add_parser("models", help="print the model registry")

    for name in ("generate", "evaluate"):
        cmd = sub.add_parser(name, help=f"{name} a model on a dataset")
        _add_run_arguments(cmd)

    aug = sub.add_parser("augment", help="Figure 6 augmentation study")
    # The augmentation study measures classification accuracy, which
    # needs the dataset's real labels — surrogate supervision is not a
    # substitute here, so only the labeled datasets are accepted.
    _add_run_arguments(aug, datasets=labeled_dataset_names())
    aug.add_argument("--fraction", type=float, default=0.05)
    return parser


def _spec(args) -> ExperimentSpec:
    """The experiment spec described by the parsed CLI arguments."""
    overrides = {}
    if get_entry(args.model).needs_supervision:
        if args.cycles is not None:
            overrides["self_paced_cycles"] = args.cycles
        if args.generator_steps is not None:
            overrides["generator_steps_per_cycle"] = args.generator_steps
    return ExperimentSpec(model=args.model, dataset=args.dataset,
                          profile=args.profile, seed=args.seed,
                          overrides=overrides)


def _runner(args) -> Runner:
    return Runner(cache_dir=args.cache_dir,
                  allow_surrogate=args.surrogate_labels)


def _run(runner: Runner, args, **kwargs):
    """Execute the requested spec, turning config errors into exit codes.

    Only spec/supervision *resolution* errors become clean exits;
    genuine runtime failures inside fit/generate keep their traceback.
    """
    try:
        spec = _spec(args)
        if get_entry(spec.model).needs_supervision:
            runner.supervision_for(spec)  # unlabeled + --no-surrogate-labels
    except (ValueError, KeyError) as exc:
        raise SystemExit(str(exc)) from exc
    return runner.run(spec, **kwargs)


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        stats = dataset_statistics(load_dataset(name))
        rows.append([stats["name"], stats["nodes"], stats["edges"],
                     stats["classes"] or "-", stats["protected"] or "-"])
    print(format_table(["dataset", "nodes", "edges", "classes",
                        "protected"], rows))
    return 0


def _cmd_models(_args) -> int:
    rows = []
    for name in model_names():
        entry = get_entry(name)
        rows.append([name, entry.display_name,
                     "yes" if entry.needs_supervision else "no",
                     ", ".join(sorted(entry.profiles))])
    print(format_table(["name", "display", "labels", "profiles"], rows))
    return 0


def _cmd_generate(args) -> int:
    runner = _runner(args)
    result = _run(runner, args, need_model=False)
    data = runner.dataset(args.dataset)
    cached = " (cached)" if result.from_cache else ""
    print(f"model={result.model_name} dataset={data.name} "
          f"profile={args.profile}{cached}")
    print(f"fit: {result.fit_seconds:.2f}s  "
          f"generate: {result.generate_seconds:.2f}s")
    print(f"original:  {data.graph}")
    print(f"generated: {result.generated}")
    return 0


def _cmd_evaluate(args) -> int:
    result = _run(_runner(args), args, with_metrics=True)
    metrics = result.metrics
    rows = [[name, f"{metrics['overall'][name]:.4f}"]
            for name in METRIC_NAMES]
    rows.append(["mean R", f"{metrics['overall_mean']:.4f}"])
    if "protected" in metrics:
        label = ("mean R+ (surrogate)"
                 if metrics.get("protected_surrogate") else "mean R+")
        rows.append([label, f"{metrics['protected_mean']:.4f}"])
    print(format_table(["metric", "discrepancy"], rows))
    return 0


def _cmd_augment(args) -> int:
    # Unlabeled datasets are already rejected by the subparser's
    # --dataset choices (labeled_dataset_names()).
    runner = _runner(args)
    data = runner.dataset(args.dataset)
    result = _run(runner, args, need_model=True)
    study = augmentation_study(data.graph, data.labels, data.num_classes,
                               result.model,
                               np.random.default_rng(args.seed),
                               fraction=args.fraction)
    print(f"baseline accuracy:  {study.baseline_accuracy:.4f} "
          f"(+/- {study.baseline_std:.4f})")
    print(f"augmented accuracy: {study.augmented_accuracy:.4f} "
          f"(+/- {study.augmented_std:.4f})")
    print(f"relative gain:      {study.improvement:+.2%}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "models": _cmd_models,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "augment": _cmd_augment,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
