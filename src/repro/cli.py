"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``   print Table I-style statistics of the bundled datasets
``generate``   fit a model on a dataset and report generation quality
``evaluate``   overall + protected discrepancy of a fitted model
``augment``    run the Figure 6 data-augmentation study

The CLI exists so the headline experiments can be driven without writing
Python; every command is a thin wrapper over the public API.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import FairGen, FairGenConfig, make_fairgen_variant
from .data import dataset_names, dataset_statistics, load_dataset
from .eval import (augmentation_study, mean_discrepancy,
                   overall_discrepancy, protected_discrepancy)
from .models import BAModel, ERModel, GAEModel, GraphRNN, NetGAN, TagGen
from .utils import Timer, format_table

__all__ = ["main", "build_parser"]

_BASELINES = {
    "er": ERModel,
    "ba": BAModel,
    "gae": GAEModel,
    "netgan": NetGAN,
    "taggen": TagGen,
    "graphrnn": GraphRNN,
}
_FAIRGEN_VARIANTS = {
    "fairgen": "full",
    "fairgen-r": "no-sampling",
    "fairgen-no-spl": "no-spl",
    "fairgen-no-parity": "no-parity",
}
MODEL_CHOICES = sorted(_BASELINES) + sorted(_FAIRGEN_VARIANTS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FairGen reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print dataset statistics")

    for name in ("generate", "evaluate"):
        cmd = sub.add_parser(name, help=f"{name} a model on a dataset")
        cmd.add_argument("--dataset", required=True,
                         choices=dataset_names())
        cmd.add_argument("--model", required=True, choices=MODEL_CHOICES)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--cycles", type=int, default=3,
                         help="FairGen self-paced cycles")
        cmd.add_argument("--generator-steps", type=int, default=40,
                         help="FairGen generator steps per cycle")

    aug = sub.add_parser("augment", help="Figure 6 augmentation study")
    aug.add_argument("--dataset", required=True,
                     choices=["BLOG", "FLICKR", "ACM"])
    aug.add_argument("--model", required=True, choices=MODEL_CHOICES)
    aug.add_argument("--seed", type=int, default=0)
    aug.add_argument("--fraction", type=float, default=0.05)
    aug.add_argument("--cycles", type=int, default=3)
    aug.add_argument("--generator-steps", type=int, default=40)
    return parser


def _build_model(args):
    if args.model in _BASELINES:
        return _BASELINES[args.model]()
    config = FairGenConfig(self_paced_cycles=args.cycles,
                           generator_steps_per_cycle=args.generator_steps,
                           batch_iterations=4, discriminator_lr=0.05)
    return make_fairgen_variant(_FAIRGEN_VARIANTS[args.model], config)


def _fit(model, data, rng) -> None:
    if isinstance(model, FairGen):
        if not data.has_labels:
            raise SystemExit(f"{data.name} has no labels; FairGen variants "
                             "need a labeled dataset (BLOG, FLICKR, ACM)")
        nodes, classes = data.labeled_few_shot(3, rng)
        model.fit(data.graph, rng, labeled_nodes=nodes,
                  labeled_classes=classes,
                  protected_mask=data.protected_mask)
    else:
        model.fit(data.graph, rng)


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        stats = dataset_statistics(load_dataset(name))
        rows.append([stats["name"], stats["nodes"], stats["edges"],
                     stats["classes"] or "-", stats["protected"] or "-"])
    print(format_table(["dataset", "nodes", "edges", "classes",
                        "protected"], rows))
    return 0


def _cmd_generate(args) -> int:
    data = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    model = _build_model(args)
    with Timer() as fit_time:
        _fit(model, data, rng)
    with Timer() as gen_time:
        generated = model.generate(rng)
    print(f"model={model.name} dataset={data.name}")
    print(f"fit: {fit_time.seconds:.2f}s  generate: {gen_time.seconds:.2f}s")
    print(f"original:  {data.graph}")
    print(f"generated: {generated}")
    return 0


def _cmd_evaluate(args) -> int:
    data = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    model = _build_model(args)
    _fit(model, data, rng)
    generated = model.generate(rng)
    overall = overall_discrepancy(data.graph, generated, aspl_sample=120)
    rows = [[name, f"{value:.4f}"] for name, value in overall.items()]
    rows.append(["mean R", f"{mean_discrepancy(overall):.4f}"])
    if data.protected_mask is not None:
        prot = protected_discrepancy(data.graph, generated,
                                     data.protected_mask, aspl_sample=120)
        rows.append(["mean R+", f"{mean_discrepancy(prot):.4f}"])
    print(format_table(["metric", "discrepancy"], rows))
    return 0


def _cmd_augment(args) -> int:
    data = load_dataset(args.dataset)
    rng = np.random.default_rng(args.seed)
    model = _build_model(args)
    _fit(model, data, rng)
    result = augmentation_study(data.graph, data.labels, data.num_classes,
                                model, rng, fraction=args.fraction)
    print(f"baseline accuracy:  {result.baseline_accuracy:.4f} "
          f"(+/- {result.baseline_std:.4f})")
    print(f"augmented accuracy: {result.augmented_accuracy:.4f} "
          f"(+/- {result.augmented_std:.4f})")
    print(f"relative gain:      {result.improvement:+.2%}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "augment": _cmd_augment,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
