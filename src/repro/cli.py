"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``   print Table I-style statistics of the bundled datasets
``models``     print the model registry (names, profiles, supervision)
``generate``   fit a model on a dataset and report generation quality
``evaluate``   overall + protected discrepancy of a fitted model
``augment``    run the Figure 6 data-augmentation study
``sweep``      submit a model×dataset×profile×seed grid to a job queue,
               optionally self-hosting local workers; ``--status
               <queue_dir>`` prints a read-only queue dashboard instead
``worker``     drain a sweep queue (run one per core / per host)
``serve``      long-lived generation daemon over the artifact cache:
               continuous-batching walk decode, model LRU, bounded
               admission queue (see README "Serving")
``ingest``     shard an edge-list file or graph archive into an
               out-of-core shard directory (see README "Sharded graphs")
``graph``      shard-directory utilities; ``graph stats <dir>`` prints
               the manifest summary without loading any shard
``trace``      trace-file utilities; ``trace summarize <file>`` prints
               a per-span wall/self-time table of a Chrome-trace JSONL
               produced with ``--trace`` / ``REPRO_TRACE``

The global ``--trace PATH`` flag (equivalently the ``REPRO_TRACE``
environment variable) makes any command emit a Chrome trace_event file
loadable in Perfetto or ``chrome://tracing``; with the flag unset,
instrumentation is a no-op (see README "Observability").

``generate`` and ``evaluate`` also accept ``--server URL`` to route the
request to a running ``repro serve`` daemon instead of executing
locally.  Both ``serve`` and ``worker --keep-alive`` shut down
gracefully on SIGTERM/SIGINT: in-flight work drains before exit.

Every model run routes through the experiment API
(:class:`repro.experiments.Runner`): models are built from the registry
under a named hyperparameter profile (``--profile paper|bench|smoke``),
unlabeled datasets receive surrogate supervision for label-aware models
(disable with ``--no-surrogate-labels``), and ``--cache-dir`` enables the
disk-backed artifact cache so repeated invocations skip fitting.  The
``sweep``/``worker`` pair runs batches across a worker fleet: both sides
only need to see the same ``--queue-dir`` and ``--cache-dir``, so a
second machine pointing at a shared mount joins the fleet as-is.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .data import (dataset_names, dataset_statistics, labeled_dataset_names,
                   load_dataset)
from .eval import augmentation_study
from .experiments import ExperimentSpec, JobQueue, QueueError, Runner, Worker
from .experiments import sweep as sweep_api
from .graph.metrics import METRIC_NAMES
from .registry import get_entry, model_names, profile_names
from .utils import format_table

__all__ = ["main", "build_parser"]

MODEL_CHOICES = sorted(model_names())


def _add_run_arguments(cmd: argparse.ArgumentParser,
                       datasets: list[str] | None = None) -> None:
    """Arguments shared by every command that executes a model run."""
    cmd.add_argument("--dataset", required=True,
                     choices=datasets or dataset_names())
    cmd.add_argument("--model", required=True, choices=MODEL_CHOICES)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument("--profile", choices=profile_names(), default="paper",
                     help="hyperparameter profile from the model registry")
    cmd.add_argument("--cycles", type=int, default=None,
                     help="override FairGen self-paced cycles")
    cmd.add_argument("--generator-steps", type=int, default=None,
                     help="override FairGen generator steps per cycle")
    cmd.add_argument("--cache-dir", default=None,
                     help="directory of the disk-backed artifact cache; "
                          "warm entries skip fitting entirely")
    cmd.add_argument("--surrogate-labels", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="derive degree-based surrogate supervision for "
                          "unlabeled datasets when a label-aware model "
                          "is requested (default: on)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FairGen reproduction command line")
    parser.add_argument("--backend", choices=None, default=None,
                        metavar="NAME",
                        help="tensor backend for every numeric op "
                             "(default: $REPRO_BACKEND or 'numpy'; see "
                             "repro.nn.available_backends())")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace_event file of this "
                             "invocation (open in Perfetto or "
                             "chrome://tracing; same as REPRO_TRACE=PATH)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print dataset statistics")
    sub.add_parser("models", help="print the model registry")

    for name in ("generate", "evaluate"):
        cmd = sub.add_parser(name, help=f"{name} a model on a dataset")
        _add_run_arguments(cmd)
        cmd.add_argument("--server", default=None, metavar="URL",
                         help="route the request to a running `repro "
                              "serve` daemon (the spec must already be "
                              "fitted in the daemon's cache)")
        if name == "generate":
            cmd.add_argument("--walks", type=int, default=64,
                             help="walks to request in --server mode")
            cmd.add_argument("--length", type=int, default=None,
                             help="walk length in --server mode "
                                  "(default: the model's walk length)")

    aug = sub.add_parser("augment", help="Figure 6 augmentation study")
    # The augmentation study measures classification accuracy, which
    # needs the dataset's real labels — surrogate supervision is not a
    # substitute here, so only the labeled datasets are accepted.
    _add_run_arguments(aug, datasets=labeled_dataset_names())
    aug.add_argument("--fraction", type=float, default=0.05)

    swp = sub.add_parser(
        "sweep", help="run a model/dataset/profile/seed grid through the "
                      "distributed job queue (or --status to inspect one)")
    swp.add_argument("--status", metavar="QUEUE_DIR", default=None,
                     help="print a read-only dashboard of the queue "
                          "(counts, lease ages, retries) and exit")
    swp.add_argument("--queue-dir", default=None,
                     help="job-queue directory shared by every worker")
    swp.add_argument("--cache-dir", default=None,
                     help="shared artifact cache where results land")
    swp.add_argument("--model", action="append", default=None,
                     choices=MODEL_CHOICES, help="repeat for several models")
    swp.add_argument("--dataset", action="append", default=None,
                     choices=dataset_names(), help="repeat for several "
                     "datasets")
    swp.add_argument("--profile", action="append", choices=profile_names(),
                     default=None, help="repeat for several profiles "
                     "(default: paper)")
    swp.add_argument("--seed", action="append", type=int, default=None,
                     help="repeat for several seeds (default: 0)")
    swp.add_argument("--set", action="append", default=[], metavar="K=V",
                     dest="overrides",
                     help="hyperparameter override axis, JSON-valued: "
                          "--set self_paced_cycles=2 or "
                          "--set self_paced_cycles=[2,4] (a list sweeps "
                          "the axis)")
    swp.add_argument("--workers", type=int, default=2,
                     help="local worker processes to self-host (0: submit "
                          "and wait for external `repro worker` fleets)")
    swp.add_argument("--with-metrics", action="store_true",
                     help="compute the discrepancy scoreboard per spec")
    swp.add_argument("--stack-seeds", action="store_true",
                     help="collapse each eligible grid cell's seed axis "
                          "into ONE vmap-style stacked fit before "
                          "submission (per-seed artifacts land under "
                          "their ordinary cache keys; workers then "
                          "replay them with zero refits)")
    swp.add_argument("--submit-only", action="store_true",
                     help="enqueue the grid and exit without waiting")
    swp.add_argument("--lease-timeout", type=float, default=None,
                     help="seconds without heartbeat before a job is "
                          "requeued (recorded in the queue config)")
    swp.add_argument("--max-retries", type=int, default=None,
                     help="requeues per job before it fails terminally")
    swp.add_argument("--timeout", type=float, default=None,
                     help="give up if the sweep has not drained in time")
    swp.add_argument("--surrogate-labels", default=True,
                     action=argparse.BooleanOptionalAction)

    wrk = sub.add_parser(
        "worker", help="drain jobs from a sweep queue until it is empty")
    wrk.add_argument("queue_dir", help="job-queue directory to drain")
    wrk.add_argument("--cache-dir", required=True,
                     help="shared artifact cache where results land")
    wrk.add_argument("--max-jobs", type=int, default=None,
                     help="exit after executing this many jobs")
    wrk.add_argument("--keep-alive", action="store_true",
                     help="keep polling an empty queue instead of exiting "
                          "(standing-fleet mode)")
    wrk.add_argument("--poll", type=float, default=0.5,
                     help="seconds between claim attempts when idle")
    wrk.add_argument("--worker-id", default=None,
                     help="override the autogenerated worker identity")
    wrk.add_argument("--metrics-file", nargs="?", const="auto",
                     default=None, metavar="PATH",
                     help="periodically write a JSON metrics snapshot "
                          "(job counts, queue depth, runner cache "
                          "hits/misses); bare flag picks "
                          "<queue_dir>/metrics/<worker_id>.json, which "
                          "`repro sweep --status` aggregates")
    wrk.add_argument("--metrics-interval", type=float, default=None,
                     help="seconds between snapshots (default: the "
                          "heartbeat interval)")
    wrk.add_argument("--surrogate-labels", default=True,
                     action=argparse.BooleanOptionalAction)

    srv = sub.add_parser(
        "serve", help="long-lived generation daemon with "
                      "continuous-batching walk decode")
    srv.add_argument("--cache-dir", required=True,
                     help="artifact cache holding the fitted "
                          "<key>.model.npz archives to serve")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8777,
                     help="listen port (0: pick a free port)")
    srv.add_argument("--max-models", type=int, default=4,
                     help="resident-model LRU capacity")
    srv.add_argument("--max-walks", type=int, default=256,
                     help="walk rows resident per decode batch")
    srv.add_argument("--lookahead", type=int, default=1,
                     help="tokens decoded per engine tick (multi-token "
                          "decode; served walks stay byte-identical)")
    srv.add_argument("--max-inflight", type=int, default=8,
                     help="target concurrently decoding requests")
    srv.add_argument("--queue-depth", type=int, default=16,
                     help="requests allowed to wait beyond --max-inflight "
                          "before 429")
    srv.add_argument("--request-timeout", type=float, default=120.0,
                     help="per-request decode deadline in seconds")
    srv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request")

    ing = sub.add_parser(
        "ingest", help="shard an edge list into an out-of-core graph "
                       "directory (bounded-memory streaming ingest)")
    ing.add_argument("source",
                     help="whitespace edge-list file ('u v' per line, "
                          "'#' comments) or a graph-csr .npz archive")
    ing.add_argument("out_dir", help="shard directory to create")
    ing.add_argument("--num-shards", type=int, default=None,
                     help="node-range shard count (default: 1)")
    ing.add_argument("--nodes-per-shard", type=int, default=None,
                     help="alternative sizing: nodes per shard")
    ing.add_argument("--num-nodes", type=int, default=None,
                     help="node-id space size for edge-list input "
                          "(default: max id + 1, found by one extra "
                          "streaming pass)")
    ing.add_argument("--overwrite", action="store_true",
                     help="replace a completed shard directory at "
                          "out_dir (interrupted ingests never need this)")

    grf = sub.add_parser("graph", help="shard-directory utilities")
    grf_sub = grf.add_subparsers(dest="graph_command", required=True)
    gst = grf_sub.add_parser(
        "stats", help="print a shard directory's manifest summary "
                      "(nodes, edges, shards, degree histogram) without "
                      "loading any shard resident")
    gst.add_argument("shard_dir")

    trc = sub.add_parser("trace", help="Chrome-trace file utilities")
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    tsm = trc_sub.add_parser(
        "summarize", help="per-span count/total/self-time table of one "
                          "or more trace files written via --trace or "
                          "REPRO_TRACE")
    tsm.add_argument("files", nargs="+",
                     help="trace_event JSON(L) files to aggregate")
    tsm.add_argument("--top", type=int, default=None,
                     help="only print the N spans with the most total "
                          "time")
    return parser


def _spec(args) -> ExperimentSpec:
    """The experiment spec described by the parsed CLI arguments."""
    overrides = {}
    if get_entry(args.model).needs_supervision:
        if args.cycles is not None:
            overrides["self_paced_cycles"] = args.cycles
        if args.generator_steps is not None:
            overrides["generator_steps_per_cycle"] = args.generator_steps
    return ExperimentSpec(model=args.model, dataset=args.dataset,
                          profile=args.profile, seed=args.seed,
                          overrides=overrides)


def _runner(args) -> Runner:
    return Runner(cache_dir=args.cache_dir,
                  allow_surrogate=args.surrogate_labels)


def _run(runner: Runner, args, **kwargs):
    """Execute the requested spec, turning config errors into exit codes.

    Only spec/supervision *resolution* errors become clean exits;
    genuine runtime failures inside fit/generate keep their traceback.
    """
    try:
        spec = _spec(args)
        if get_entry(spec.model).needs_supervision:
            runner.supervision_for(spec)  # unlabeled + --no-surrogate-labels
    except (ValueError, KeyError) as exc:
        raise SystemExit(str(exc)) from exc
    return runner.run(spec, **kwargs)


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        stats = dataset_statistics(load_dataset(name))
        rows.append([stats["name"], stats["nodes"], stats["edges"],
                     stats["classes"] or "-", stats["protected"] or "-"])
    print(format_table(["dataset", "nodes", "edges", "classes",
                        "protected"], rows))
    return 0


def _cmd_models(_args) -> int:
    rows = []
    for name in model_names():
        entry = get_entry(name)
        rows.append([name, entry.display_name,
                     "yes" if entry.needs_supervision else "no",
                     ", ".join(sorted(entry.profiles))])
    print(format_table(["name", "display", "labels", "profiles"], rows))
    return 0


def _cmd_generate(args) -> int:
    if args.server:
        from .serve.client import ServeClient, ServeClientError

        key = _spec(args).cache_key()
        client = ServeClient(args.server, retries=3)
        try:
            walks = client.generate(key, args.walks, length=args.length,
                                    seed=args.seed)
        except ServeClientError as exc:
            raise SystemExit(f"server error ({exc.status}): {exc}") from exc
        print(f"model={key} server={args.server}")
        print(f"walks: {walks.shape[0]} x {walks.shape[1]}  "
              f"nodes visited: {np.unique(walks).size}")
        return 0
    runner = _runner(args)
    result = _run(runner, args, need_model=False)
    data = runner.dataset(args.dataset)
    cached = " (cached)" if result.from_cache else ""
    print(f"model={result.model_name} dataset={data.name} "
          f"profile={args.profile}{cached}")
    print(f"fit: {result.fit_seconds:.2f}s  "
          f"generate: {result.generate_seconds:.2f}s")
    print(f"original:  {data.graph}")
    print(f"generated: {result.generated}")
    return 0


def _cmd_evaluate(args) -> int:
    if args.server:
        from .serve.client import ServeClient, ServeClientError

        key = _spec(args).cache_key()
        try:
            metrics = ServeClient(args.server).evaluate(key)["metrics"]
        except ServeClientError as exc:
            raise SystemExit(f"server error ({exc.status}): {exc}") from exc
    else:
        metrics = _run(_runner(args), args, with_metrics=True).metrics
    rows = [[name, f"{metrics['overall'][name]:.4f}"]
            for name in METRIC_NAMES]
    rows.append(["mean R", f"{metrics['overall_mean']:.4f}"])
    if "protected" in metrics:
        label = ("mean R+ (surrogate)"
                 if metrics.get("protected_surrogate") else "mean R+")
        rows.append([label, f"{metrics['protected_mean']:.4f}"])
    print(format_table(["metric", "discrepancy"], rows))
    return 0


def _cmd_augment(args) -> int:
    # Unlabeled datasets are already rejected by the subparser's
    # --dataset choices (labeled_dataset_names()).
    runner = _runner(args)
    data = runner.dataset(args.dataset)
    result = _run(runner, args, need_model=True)
    study = augmentation_study(data.graph, data.labels, data.num_classes,
                               result.model,
                               np.random.default_rng(args.seed),
                               fraction=args.fraction)
    print(f"baseline accuracy:  {study.baseline_accuracy:.4f} "
          f"(+/- {study.baseline_std:.4f})")
    print(f"augmented accuracy: {study.augmented_accuracy:.4f} "
          f"(+/- {study.augmented_std:.4f})")
    print(f"relative gain:      {study.improvement:+.2%}")
    return 0


def _parse_override_axes(pairs: list[str]) -> dict[str, object]:
    """Parse ``--set k=v`` flags; values are JSON (fallback: string)."""
    axes: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects K=V, got {pair!r}")
        try:
            axes[key] = json.loads(raw)
        except json.JSONDecodeError:
            axes[key] = raw  # bare strings need no quoting
    return axes


def _cmd_sweep_status(queue_dir: str) -> int:
    """Read-only dashboard over a sweep queue's current state."""
    from pathlib import Path

    # Only accept a directory that already is a queue (every
    # initialised queue carries a queue.json): constructing JobQueue on
    # an arbitrary path would scaffold pending/claimed/... into it,
    # silently converting a typo'd directory into a valid empty queue.
    path = Path(queue_dir).expanduser()
    if not path.is_dir() or not (path / "queue.json").exists():
        raise SystemExit(f"no queue at {queue_dir}")
    queue = JobQueue(queue_dir)
    snapshot = queue.status()
    counts = snapshot["counts"]
    print(f"queue {queue.queue_dir} "
          f"(lease timeout {queue.lease_timeout:g}s, "
          f"max retries {queue.max_retries}):")
    print("  " + "  ".join(f"{state}={count}"
                           for state, count in counts.items()))
    if not snapshot["jobs"]:
        print("(no jobs)")
        return 0
    rows = []
    for job in snapshot["jobs"]:
        lease = ("-" if job["lease_age"] is None
                 else f"{job['lease_age']:.1f}s")
        rows.append([job["id"], job["state"], job["attempts"],
                     job["retries"], job["worker"] or "-", lease,
                     (job["note"] or "-")[:60]])
    print(format_table(["job", "state", "attempts", "retries", "worker",
                        "lease age", "note"], rows))
    _print_fleet_metrics(path)
    return 0


def _snapshot_total(snap: dict, name: str) -> int:
    """Sum a counter across its label series in one worker snapshot."""
    entry = snap.get(name)
    if not isinstance(entry, dict):
        return 0
    value = entry.get("value", 0)
    if isinstance(value, dict):
        return int(sum(v for v in value.values()
                       if isinstance(v, (int, float))))
    return int(value) if isinstance(value, (int, float)) else 0


def _print_fleet_metrics(queue_path) -> None:
    """Aggregate `repro worker --metrics-file` snapshots, if any exist.

    Workers with the bare ``--metrics-file`` flag drop their registry
    snapshots under ``<queue_dir>/metrics/``; this section turns them
    into a fleet dashboard (per-worker claims/requeues plus the
    registry-backed queue-depth gauge of the freshest snapshot).
    """
    import time as _time

    metrics_dir = queue_path / "metrics"
    if not metrics_dir.is_dir():
        return
    snapshots = []
    for snap_path in sorted(metrics_dir.glob("*.json")):
        try:
            snap = json.loads(snap_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # a worker may be mid-write; skip, not crash
        if isinstance(snap, dict):
            snapshots.append(snap)
    if not snapshots:
        return
    print()
    print("fleet metrics (worker snapshots):")
    rows = []
    for snap in snapshots:
        taken = snap.get("snapshot_unix_time")
        age = (f"{max(_time.time() - taken, 0.0):.0f}s"
               if isinstance(taken, (int, float)) else "-")
        rows.append([snap.get("worker_id", "?"),
                     _snapshot_total(snap, "worker_jobs_total"),
                     _snapshot_total(snap, "jobqueue_claims_total"),
                     _snapshot_total(snap, "jobqueue_requeues_total"),
                     _snapshot_total(snap, "jobqueue_lease_expiries_total"),
                     age])
    print(format_table(["worker", "jobs", "claims", "requeues",
                        "lease exp", "snapshot age"], rows))
    freshest = max(snapshots,
                   key=lambda s: s.get("snapshot_unix_time") or 0)
    depth = freshest.get("jobqueue_depth", {})
    if isinstance(depth, dict) and isinstance(depth.get("value"), dict):
        states = {}
        for label_key, value in depth["value"].items():
            try:
                state = json.loads(label_key).get("state", label_key)
            except (json.JSONDecodeError, AttributeError):
                state = label_key
            states[state] = int(value)
        if states:
            print("queue depth (freshest snapshot): "
                  + "  ".join(f"{state}={count}"
                              for state, count in sorted(states.items())))


def _cmd_sweep(args) -> int:
    if args.status is not None:
        return _cmd_sweep_status(args.status)
    missing = [flag for flag, value in (("--queue-dir", args.queue_dir),
                                        ("--cache-dir", args.cache_dir),
                                        ("--model", args.model),
                                        ("--dataset", args.dataset))
               if not value]
    if missing:
        raise SystemExit("repro sweep requires " + ", ".join(missing)
                         + " (or --status QUEUE_DIR to inspect a queue)")
    try:
        specs = sweep_api.grid(
            args.model, args.dataset,
            profiles=args.profile or ["paper"],
            seeds=args.seed if args.seed is not None else [0],
            overrides=_parse_override_axes(args.overrides))
    except (ValueError, KeyError) as exc:
        raise SystemExit(str(exc)) from exc
    queue = JobQueue(args.queue_dir, lease_timeout=args.lease_timeout,
                     max_retries=args.max_retries)
    print(f"sweep: {len(specs)} spec(s) -> {queue.queue_dir}")
    if args.submit_only:
        queue.submit(specs, with_metrics=args.with_metrics)
        counts = queue.counts()
        print(f"submitted; queue now {counts} — drain with "
              f"`repro worker {queue.queue_dir} "
              f"--cache-dir {args.cache_dir}`")
        return 0

    total = len(specs)
    live = sys.stdout.isatty()
    last_counts: dict[str, int] = {}

    def progress(counts: dict[str, int]) -> None:
        # A terminal gets a continuously refreshed \r line; a log file
        # only gets a new line when the counts actually change (a long
        # sweep polls several times a second).
        if not live and counts == last_counts:
            return
        last_counts.update(counts)
        line = (f"done {counts['done']}/{total}  "
                f"pending={counts['pending']} running={counts['claimed']} "
                f"failed={counts['failed']}")
        print(f"\r{line}", end="" if live else "\n", flush=True)

    try:
        report = sweep_api.run_sweep(
            specs, args.queue_dir, args.cache_dir, workers=args.workers,
            with_metrics=args.with_metrics, stack_seeds=args.stack_seeds,
            lease_timeout=args.lease_timeout, max_retries=args.max_retries,
            timeout=args.timeout, allow_surrogate=args.surrogate_labels,
            progress=progress)
    except QueueError as exc:
        print()
        raise SystemExit(str(exc)) from exc
    print()
    print(_sweep_table(report, with_metrics=args.with_metrics))
    if args.with_metrics:
        board = report.scoreboard()
        if board:
            print()
            print("seed-averaged scoreboard (mean +/- std):")
            print(_scoreboard_table(board))
    print(f"{report.completed}/{total} completed in {report.seconds:.1f}s, "
          f"{len(report.fits)} fit(s), "
          f"{report.duplicate_fits} duplicate fit(s)")
    for job_id, message in report.failures.items():
        print(f"\nFAILED {job_id}:\n{message}", file=sys.stderr)
    return 1 if report.failures else 0


def _sweep_table(report, with_metrics: bool = False) -> str:
    headers = ["model", "dataset", "profile", "seed", "status",
               "fit_s", "gen_s"]
    if with_metrics:
        headers.append("mean R")
    rows = []
    for spec, result in zip(report.specs, report.results):
        if result is None:
            row = [get_entry(spec.model).display_name, spec.dataset,
                   spec.profile, spec.seed, "FAILED", "-", "-"]
            if with_metrics:
                row.append("-")
        else:
            row = [result.model_name, spec.dataset, spec.profile, spec.seed,
                   "done", f"{result.fit_seconds:.2f}",
                   f"{result.generate_seconds:.2f}"]
            if with_metrics:
                row.append(f"{result.metrics['overall_mean']:.4f}")
        rows.append(row)
    return format_table(headers, rows)


def _scoreboard_table(board: list[dict]) -> str:
    """Render :meth:`SweepReport.scoreboard` rows as a summary table."""
    rows = []
    for row in board:
        model = row["model"]
        if row.get("overrides"):
            # Cells split by hyperparameter overrides must stay
            # distinguishable in the rendered table.
            model += " {" + ", ".join(f"{k}={v}" for k, v
                                      in row["overrides"].items()) + "}"
        overall = f"{row['overall_mean']:.4f} +/- {row['overall_std']:.4f}"
        if "protected_mean" in row:
            protected = (f"{row['protected_mean']:.4f} +/- "
                         f"{row['protected_std']:.4f}")
            if row.get("protected_surrogate"):
                protected += " (surrogate)"
        else:
            protected = "-"
        rows.append([model, row["dataset"], row["profile"],
                     row["seeds"], overall, protected])
    return format_table(["model", "dataset", "profile", "seeds",
                         "mean R", "mean R+"], rows)


def _install_drain_handler(on_signal) -> None:
    """SIGTERM/SIGINT call ``on_signal`` once; a second signal kills.

    The first signal requests a graceful drain (finish in-flight work,
    then exit); an operator who cannot wait sends the signal again and
    gets the default die-now behaviour back.
    """
    import signal

    def handler(signum, _frame):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)
        on_signal(signum)

    signal.signal(signal.SIGTERM, handler)
    signal.signal(signal.SIGINT, handler)


def _cmd_worker(args) -> int:
    import threading

    worker = Worker(args.queue_dir, args.cache_dir,
                    worker_id=args.worker_id,
                    allow_surrogate=args.surrogate_labels,
                    metrics_file=args.metrics_file,
                    metrics_interval=args.metrics_interval)
    stop = threading.Event()

    def on_signal(signum):
        print(f"worker {worker.worker_id}: signal {signum}, finishing "
              "current job then exiting", flush=True)
        stop.set()

    _install_drain_handler(on_signal)
    stats = worker.run(max_jobs=args.max_jobs, keep_alive=args.keep_alive,
                       poll_interval=args.poll, stop=stop)
    print(f"worker {worker.worker_id}: {stats['completed']} completed, "
          f"{stats['failed']} failed, {stats['lost']} lost")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from .serve.daemon import ServeDaemon

    daemon = ServeDaemon(args.cache_dir, host=args.host, port=args.port,
                         max_models=args.max_models,
                         max_walks=args.max_walks,
                         lookahead=args.lookahead,
                         max_inflight=args.max_inflight,
                         queue_depth=args.queue_depth,
                         request_timeout=args.request_timeout,
                         verbose=args.verbose)
    stop = threading.Event()
    _install_drain_handler(lambda signum: stop.set())
    daemon.start()
    # The subprocess tests (and humans scripting the daemon) parse this
    # line for the bound address, so --port 0 is usable.
    print(f"serving on {daemon.url} (cache: {args.cache_dir})", flush=True)
    stop.wait()
    print("draining in-flight requests...", flush=True)
    daemon.shutdown()
    print("served "
          f"{daemon.admission.completed} request(s); bye", flush=True)
    return 0


def _cmd_ingest(args) -> int:
    from .graph.sharded import ingest_edge_file

    if args.num_shards is not None and args.nodes_per_shard is not None:
        raise SystemExit("pass --num-shards or --nodes-per-shard, "
                         "not both")
    try:
        sharded = ingest_edge_file(
            args.source, args.out_dir, num_nodes=args.num_nodes,
            num_shards=args.num_shards,
            nodes_per_shard=args.nodes_per_shard,
            overwrite=args.overwrite)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    stats = sharded.stats()
    print(f"ingested {stats['num_edges']} edges over "
          f"{stats['num_nodes']} nodes into {stats['num_shards']} "
          f"shard(s) at {stats['path']}")
    return 0


def _cmd_trace(args) -> int:
    from .obs.trace import render_summary, summarize_trace

    if args.trace_command == "summarize":
        try:
            rows = summarize_trace(args.files)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        if not rows:
            print("(no duration events)")
            return 0
        if args.top is not None:
            rows = rows[:args.top]
        print(render_summary(rows))
        return 0
    raise SystemExit(f"unknown trace command {args.trace_command!r}")


def _cmd_graph(args) -> int:
    from .graph.sharded import ShardedGraph

    try:
        sharded = ShardedGraph(args.shard_dir)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    stats = sharded.stats()
    print(f"shard directory {stats['path']}")
    print(f"  nodes:  {stats['num_nodes']}")
    print(f"  edges:  {stats['num_edges']}")
    print(f"  shards: {stats['num_shards']}")
    print(f"  max degree: {stats['max_degree']}")
    rows = [[i, f"[{stats['shard_starts'][i]}, "
                f"{stats['shard_starts'][i + 1]})", edges]
            for i, edges in enumerate(stats["shard_edges"])]
    print(format_table(["shard", "node range", "edge slots"], rows))
    hist = stats["degree_histogram"]
    print(format_table(["degree", "nodes"],
                       [[b, c] for b, c in zip(hist["bins"],
                                               hist["counts"])]))
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "models": _cmd_models,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "augment": _cmd_augment,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "graph": _cmd_graph,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        from .nn import set_backend

        try:
            set_backend(args.backend)
        except KeyError as exc:
            raise SystemExit(str(exc)) from exc
    if args.trace is not None:
        from .obs import trace as _trace

        try:
            _trace.enable(args.trace)
        except OSError as exc:
            raise SystemExit(f"cannot open trace file: {exc}") from exc
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
