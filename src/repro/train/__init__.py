"""Shared training subsystem: one loop for every trainable model.

``repro.train`` replaces the five hand-rolled fit loops (FairGen's
Algorithm 1 cycle loop, NetGAN's WGAN iterations, GraphRNN's sequence
epochs, GAE's full-batch steps and TagGen's walk-corpus epochs) with a
single :class:`Trainer` that owns batching helpers, optimizer stepping,
gradient clipping, callbacks and the uniform loss-history contract —
and, through :class:`TrainState` checkpoints, gives every fit
byte-identical interrupt/resume semantics that the experiment Runner
and the distributed sweep scheduler exploit (``<key>.ckpt.npz`` in the
artifact cache, written on the worker's heartbeat cadence).
"""

from .trainer import (CHECKPOINT_FORMAT, MetricsCallback, TrainCallback,
                      TrainControl, Trainer, TrainState, minibatches,
                      step_rng, train_step)
from .stacked import StackedRNG, stacked_step_rng

__all__ = ["Trainer", "TrainState", "TrainControl", "TrainCallback",
           "MetricsCallback", "minibatches", "train_step", "step_rng",
           "CHECKPOINT_FORMAT", "StackedRNG", "stacked_step_rng"]
