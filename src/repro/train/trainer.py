"""The shared training loop: ``Trainer`` + ``TrainState`` + callbacks.

Before this module every trainable model (FairGen, NetGAN, GraphRNN,
GAE, TagGen) re-implemented the same loop by hand: batching, optimizer
stepping, gradient clipping and loss-history bookkeeping, each with its
own bespoke structure.  ``Trainer`` centralises that loop while keeping
the *numerics of every model bit-identical* to the legacy code — the
task still owns the epoch body and consumes the caller's RNG in exactly
the legacy order, so seeded fits reproduce the pre-refactor parameters
exactly (pinned by ``tests/fixtures/train_parity.json``).

The loop contract
-----------------
A *task* is any object implementing:

``modules() -> Mapping[str, Module]``
    The named modules whose parameters form the checkpointed state.
``optimizers() -> Mapping[str, Optimizer]``
    The named optimizers (their moment buffers checkpoint too, so a
    resumed Adam continues exactly where it stopped).
``epoch(state, rng) -> float | dict``
    One training epoch / cycle / iteration.  The return value is the
    epoch's loss record; ``Trainer`` appends it to ``state.history`` —
    the uniform loss-history contract every model now shares.

and optionally:

``extra_state() -> Mapping[str, ndarray]`` / ``load_extra_state(...)``
    Non-parameter training state (walk pools, curriculum vectors, ...)
    that must survive a checkpoint/resume round trip.

Checkpoint / resume
-------------------
``TrainControl`` attaches checkpointing to a fit: after an epoch whose
checkpoint is due, the full training state — module parameters,
optimizer moments, task extras, loss history and the *caller's RNG
state* — is written atomically to ``checkpoint_path``.  A later fit of
the same spec finds the file, restores everything and continues from
the next epoch; because the RNG state is part of the snapshot, the
resumed fit is byte-identical to an uninterrupted one.

Epoch callbacks
---------------
``TrainCallback`` hooks run inside the loop.  ``on_epoch_end`` fires
*before* the record is committed to history (and may mutate it) — this
is where FairGen's self-paced curriculum phase lives.  ``on_epoch_commit``
fires after the history append and any checkpoint write, which makes it
the injection point for interruption in the resume tests.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..nn import Module, Optimizer, clip_grad_norm
from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["TrainCallback", "TrainControl", "TrainState", "Trainer",
           "MetricsCallback", "minibatches", "train_step", "step_rng",
           "CHECKPOINT_FORMAT"]

#: bump when the on-disk checkpoint layout changes incompatibly
CHECKPOINT_FORMAT = "train-ckpt-v1"


# ----------------------------------------------------------------------
# Loop helpers
# ----------------------------------------------------------------------
def minibatches(total: int, batch_size: int) -> Iterator[slice]:
    """Sequential minibatch slices covering ``range(total)`` in order.

    The shared batching idiom of the fit loops (TagGen's corpus walk):
    slices, not copies, so ``walks[sl]`` stays a cheap view.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    for lo in range(0, total, batch_size):
        yield slice(lo, lo + batch_size)


def train_step(optimizer: Optimizer, params, loss_fn,
               clip_norm: float | None = None) -> float:
    """One optimization step: zero grads, compute, backward, clip, step.

    ``loss_fn`` returns the scalar loss Tensor (sampling its own batch
    if needed — RNG draws land inside the step, like the legacy loops).
    ``params`` is only consulted when ``clip_norm`` is set.  Returns the
    loss value.
    """
    optimizer.zero_grad()
    loss = loss_fn()
    loss.backward()
    if clip_norm is not None:
        clip_grad_norm(params, clip_norm)
    optimizer.step()
    _steps_counter().inc()
    return loss.item()


_STEPS_COUNTER = None


def _steps_counter():
    """Lazy default-registry counter for optimizer steps (hot path)."""
    global _STEPS_COUNTER
    if _STEPS_COUNTER is None:
        _STEPS_COUNTER = get_registry().counter(
            "train_steps_total", "Optimizer steps taken via train_step")
    return _STEPS_COUNTER


def step_rng(seed: int, epoch: int, step: int = 0) -> np.random.Generator:
    """Independent per-step RNG stream for ``(seed, epoch, step)``.

    New Trainer tasks that want order-independent minibatch randomness
    (e.g. data-parallel epochs) derive one stream per step instead of
    consuming a shared sequential generator.  The legacy-parity tasks do
    NOT use this — they keep the sequential consumption their pinned
    numerics depend on.
    """
    return np.random.default_rng(
        np.random.SeedSequence([seed & 0xFFFFFFFF, epoch, step]))


# ----------------------------------------------------------------------
# Callbacks
# ----------------------------------------------------------------------
class TrainCallback:
    """No-op base; override the hooks you need."""

    def on_fit_start(self, trainer: "Trainer", state: "TrainState") -> None:
        """After a possible checkpoint restore, before the first epoch."""

    def on_epoch_start(self, trainer: "Trainer",
                       state: "TrainState") -> None:
        """Before the task's epoch body runs."""

    def on_epoch_end(self, trainer: "Trainer", state: "TrainState",
                     record) -> None:
        """After the epoch body, before the record is committed.

        ``record`` is the task's return value; a dict record may be
        mutated in place (FairGen's curriculum phase extends it here).
        Everything done in this hook is covered by the epoch's
        checkpoint.
        """

    def on_epoch_commit(self, trainer: "Trainer",
                        state: "TrainState") -> None:
        """After the record is in history and any checkpoint is written."""

    def on_fit_end(self, trainer: "Trainer", state: "TrainState") -> None:
        """After the last epoch (not reached when a hook raises)."""


class MetricsCallback(TrainCallback):
    """Epoch/fit timings and counters into a metrics registry.

    Installed on every :class:`Trainer` by default (pass an explicit
    instance to direct the series at an injectable registry instead of
    the process-wide default).  Records, labeled by task class name:

    * ``train_epochs_total`` / ``train_fits_total`` counters,
    * ``train_epoch_seconds`` / ``train_fit_seconds`` histograms.

    Purely observational: consumes no RNG, mutates no record — fitted
    artifacts stay byte-identical with or without it.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 task_name: str | None = None):
        registry = registry if registry is not None else get_registry()
        self._task = task_name
        self._epochs = registry.counter(
            "train_epochs_total", "Completed training epochs")
        self._fits = registry.counter(
            "train_fits_total", "Completed Trainer fits")
        self._epoch_seconds = registry.histogram(
            "train_epoch_seconds", "Wall-clock seconds per training epoch")
        self._fit_seconds = registry.histogram(
            "train_fit_seconds", "Wall-clock seconds per complete fit")
        self._t_epoch = 0.0
        self._t_fit = 0.0

    def _task_label(self, trainer: "Trainer") -> str:
        if self._task is None:
            self._task = type(trainer.task).__name__
        return self._task

    def on_fit_start(self, trainer: "Trainer", state: "TrainState") -> None:
        self._t_fit = time.perf_counter()

    def on_epoch_start(self, trainer: "Trainer",
                       state: "TrainState") -> None:
        self._t_epoch = time.perf_counter()

    def on_epoch_end(self, trainer: "Trainer", state: "TrainState",
                     record) -> None:
        task = self._task_label(trainer)
        self._epochs.inc(task=task)
        self._epoch_seconds.observe(
            time.perf_counter() - self._t_epoch, task=task)

    def on_fit_end(self, trainer: "Trainer", state: "TrainState") -> None:
        task = self._task_label(trainer)
        self._fits.inc(task=task)
        self._fit_seconds.observe(
            time.perf_counter() - self._t_fit, task=task)


@dataclass
class TrainControl:
    """External control of a fit: checkpoint cadence and resume.

    The experiment :class:`~repro.experiments.Runner` installs one of
    these on a model (``model.train_control``) before calling ``fit``;
    models pass it through to their :class:`Trainer`.  ``None`` (the
    default everywhere) trains exactly as before, with no checkpoint
    I/O at all.
    """

    #: where the ``.ckpt.npz`` lives; ``None`` disables checkpointing
    checkpoint_path: str | os.PathLike | None = None
    #: minimum seconds between checkpoint writes (0 = every epoch).
    #: The scheduler's Worker sets its heartbeat interval here, so a
    #: SIGKILLed fit loses at most one lease period of work.
    min_save_interval: float = 0.0
    #: load ``checkpoint_path`` when it exists and matches ``tag``
    resume: bool = True
    #: invalidation stamp (the Runner passes its resolved-params stamp);
    #: a checkpoint written under a different tag is ignored
    tag: str | None = None
    #: extra callbacks appended after the trainer's own
    callbacks: Sequence[TrainCallback] = ()


# ----------------------------------------------------------------------
# Training state + checkpoint archive
# ----------------------------------------------------------------------
@dataclass
class TrainState:
    """Progress of one fit: epoch counter plus the loss history.

    After :meth:`load`, the restore payload (parameters, optimizer
    moments, extras, RNG state) is carried privately until
    :meth:`restore` applies it to a task.
    """

    epoch: int = 0
    history: list = field(default_factory=list)
    tag: str | None = None
    _payload: dict | None = field(default=None, repr=False)
    _rng_state: dict | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike, task,
             rng: np.random.Generator, tag: str | None = None) -> None:
        """Atomically write the full training snapshot as ``.ckpt.npz``.

        Captures the task's module parameters, optimizer moments and
        extra arrays, this state's epoch/history, and ``rng``'s exact
        bit-generator state — everything needed for a byte-identical
        resume.  Written via a temp file + ``os.replace`` so a crash
        mid-write can never leave a truncated archive behind.
        """
        path = Path(path)
        payload: dict[str, np.ndarray] = {
            "format": np.frombuffer(CHECKPOINT_FORMAT.encode(),
                                    dtype=np.uint8)}
        for mod_name, module in task.modules().items():
            for name, value in module.state_dict().items():
                payload[f"module/{mod_name}/{name}"] = value
        for opt_name, optimizer in task.optimizers().items():
            for name, value in optimizer.state_dict().items():
                payload[f"optim/{opt_name}/{name}"] = value
        if hasattr(task, "extra_state"):
            for name, value in task.extra_state().items():
                payload[f"extra/{name}"] = np.asarray(value)
        meta = {"epoch": self.epoch, "history": self.history,
                "rng_state": rng.bit_generator.state, "tag": tag}
        payload["meta_json"] = np.frombuffer(
            json.dumps(meta, default=str).encode(), dtype=np.uint8)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainState | None":
        """Read a checkpoint; ``None`` for missing/corrupt/foreign files.

        A checkpoint is a pure optimisation — any read problem degrades
        to "train from scratch" rather than failing the fit.
        """
        import zipfile

        path = Path(path)
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                if "format" not in archive or "meta_json" not in archive:
                    return None
                if archive["format"].tobytes().decode() != CHECKPOINT_FORMAT:
                    return None
                meta = json.loads(archive["meta_json"].tobytes().decode())
                arrays = {name: archive[name] for name in archive.files
                          if name not in ("format", "meta_json")}
        except (OSError, ValueError, KeyError, json.JSONDecodeError,
                zipfile.BadZipFile):
            return None
        state = cls(epoch=int(meta["epoch"]), history=list(meta["history"]),
                    tag=meta.get("tag"))
        state._payload = arrays
        state._rng_state = meta.get("rng_state")
        return state

    # ------------------------------------------------------------------
    def restore(self, task, rng: np.random.Generator) -> None:
        """Apply a loaded snapshot to ``task`` and ``rng`` in place.

        Transactional: if any part of the snapshot fails to apply (a
        layout drift, a missing module's arrays), the task is rolled
        back to its pre-restore state before the error propagates —
        a failed resume must leave a clean "train from scratch" slate,
        never half-checkpoint weights.
        """
        if self._payload is None:
            raise RuntimeError("restore() needs a state produced by load()")
        arrays = self._payload
        rollback_modules = {name: module.state_dict()
                            for name, module in task.modules().items()}
        rollback_opts = {name: optimizer.state_dict()
                         for name, optimizer in task.optimizers().items()}
        rollback_extra = None
        if hasattr(task, "extra_state"):
            rollback_extra = {name: np.array(value, copy=True)
                              for name, value in task.extra_state().items()}
        try:
            for mod_name, module in task.modules().items():
                prefix = f"module/{mod_name}/"
                module.load_state_dict(
                    {name[len(prefix):]: value
                     for name, value in arrays.items()
                     if name.startswith(prefix)})
            for opt_name, optimizer in task.optimizers().items():
                prefix = f"optim/{opt_name}/"
                optimizer.load_state_dict(
                    {name[len(prefix):]: value
                     for name, value in arrays.items()
                     if name.startswith(prefix)})
            if hasattr(task, "load_extra_state"):
                task.load_extra_state(
                    {name[len("extra/"):]: value
                     for name, value in arrays.items()
                     if name.startswith("extra/")})
            if self._rng_state is not None:
                # PCG64 state is nested plain ints, which JSON
                # round-trips exactly — restoring it makes the resumed
                # draw sequence continue bit-for-bit where the
                # checkpoint left off.
                rng.bit_generator.state = self._rng_state
        except Exception:
            for name, module in task.modules().items():
                module.load_state_dict(rollback_modules[name])
            for name, optimizer in task.optimizers().items():
                optimizer.load_state_dict(rollback_opts[name])
            if rollback_extra is not None:
                task.load_extra_state(rollback_extra)
            raise


# ----------------------------------------------------------------------
# The Trainer
# ----------------------------------------------------------------------
class Trainer:
    """Drives a task's epochs with callbacks and checkpoint/resume.

    Parameters
    ----------
    task:
        The object owning modules, optimizers and the epoch body (see
        the module docstring for the contract).
    epochs:
        Total epoch count of a complete fit.  A resumed fit continues
        from the checkpoint's epoch up to this total.
    callbacks:
        :class:`TrainCallback` hooks, run in order (control callbacks
        run after these).
    control:
        Optional :class:`TrainControl` for checkpointing/resume.
    """

    def __init__(self, task, *, epochs: int,
                 callbacks: Sequence[TrainCallback] = (),
                 control: TrainControl | None = None):
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        self.task = task
        self.epochs = epochs
        self.control = control
        self.callbacks: list[TrainCallback] = list(callbacks)
        if control is not None:
            self.callbacks.extend(control.callbacks)
        # Default telemetry; appended last so epoch timings cover the
        # other callbacks' epoch-end work (e.g. curriculum phases).
        if not any(isinstance(cb, MetricsCallback) for cb in self.callbacks):
            self.callbacks.append(MetricsCallback())
        #: the RNG of the running fit (callbacks may consume it — the
        #: curriculum phase draws its discriminator batches from here)
        self.rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    def fit(self, rng: np.random.Generator, *,
            state: TrainState | None = None) -> TrainState:
        """Run (or resume) the loop; returns the final state.

        When ``state`` is omitted and the control names an existing,
        tag-matching checkpoint, training resumes from it: parameters,
        optimizer moments, task extras and ``rng`` are restored in
        place, and only the remaining epochs run.
        """
        control = self.control
        if state is None:
            state = self._resume_state(rng) or TrainState()
        self.rng = rng
        path = (Path(control.checkpoint_path)
                if control is not None and control.checkpoint_path is not None
                else None)
        last_save = time.monotonic()
        task_name = type(self.task).__name__
        try:
            with trace.span("train.fit", task=task_name,
                            epochs=self.epochs) as fit_span:
                for cb in self.callbacks:
                    cb.on_fit_start(self, state)
                while state.epoch < self.epochs:
                    with trace.span("train.epoch", task=task_name,
                                    epoch=state.epoch):
                        for cb in self.callbacks:
                            cb.on_epoch_start(self, state)
                        record = self.task.epoch(state, rng)
                        for cb in self.callbacks:
                            cb.on_epoch_end(self, state, record)
                        state.history.append(record)
                        state.epoch += 1
                    if path is not None and (
                            control.min_save_interval <= 0.0
                            or time.monotonic() - last_save
                            >= control.min_save_interval):
                        with trace.span("train.checkpoint", task=task_name):
                            state.save(path, self.task, rng, tag=control.tag)
                        last_save = time.monotonic()
                    for cb in self.callbacks:
                        cb.on_epoch_commit(self, state)
                for cb in self.callbacks:
                    cb.on_fit_end(self, state)
                fit_span.set(final_epoch=state.epoch)
        finally:
            self.rng = None
        return state

    # ------------------------------------------------------------------
    def _resume_state(self, rng: np.random.Generator) -> TrainState | None:
        """Load + apply the control's checkpoint, if one is usable."""
        control = self.control
        if (control is None or control.checkpoint_path is None
                or not control.resume):
            return None
        state = TrainState.load(control.checkpoint_path)
        if state is None:
            return None
        if state.tag != control.tag or state.epoch > self.epochs:
            return None  # stale: different resolved params or schedule
        try:
            state.restore(self.task, rng)
        except (KeyError, ValueError, RuntimeError, TypeError):
            return None  # shape/layout drift: train from scratch instead
        return state
