"""Stacked per-seed RNG streams for vmap-style multi-seed fits.

A seed-stacked fit (see :mod:`repro.nn.vmap`) trains K same-config
models as one tensor program with a leading seed axis.  Reproducibility
demands that seed ``k``'s slice consumes *exactly* the draw sequence the
per-seed fit would have consumed from its own generator — same draws,
same order, and the generator left in the same final state so the
post-fit ``generate(rng)`` stream continues identically.

:class:`StackedRNG` delivers that: it wraps the K per-seed
``np.random.Generator`` objects and serves each batched request by
drawing the *unbatched* shape from every generator in seed order,
stacking the results along axis 0.  The wrapped generators are mutated
in place, so after the fit each seed's generator is byte-equal to the
one a sequential fit would hand to ``generate``.

Checkpointing rides the existing machinery: ``TrainState.save`` snapshots
``rng.bit_generator.state`` and ``restore`` assigns it back.
:class:`StackedRNG` exposes a duck-typed :attr:`bit_generator` whose
``state`` property fans out to the K underlying bit generators — a
stacked fit checkpoints and resumes through the untouched
:class:`~repro.train.Trainer` loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["StackedRNG", "stacked_step_rng"]

#: marker distinguishing a stacked RNG snapshot from a plain PCG64 state
STACKED_STATE_KEY = "stacked_rng_states"


class _StackedBitGenerator:
    """Duck-typed ``bit_generator`` fanning state across K generators."""

    __slots__ = ("_rngs",)

    def __init__(self, rngs: Sequence[np.random.Generator]):
        self._rngs = rngs

    @property
    def state(self) -> dict:
        return {STACKED_STATE_KEY: [rng.bit_generator.state
                                    for rng in self._rngs]}

    @state.setter
    def state(self, value: dict) -> None:
        states = value[STACKED_STATE_KEY]
        if len(states) != len(self._rngs):
            raise ValueError(f"checkpoint carries {len(states)} RNG states "
                             f"for a {len(self._rngs)}-seed stacked fit")
        for rng, st in zip(self._rngs, states):
            rng.bit_generator.state = st


class StackedRNG:
    """K per-seed generators behind one batched-draw interface.

    Every draw method takes the *stacked* shape ``(K, ...)`` and returns
    seed-ordered draws of the unbatched tail shape, one per wrapped
    generator — slice ``k`` of the result is bit-equal to what generator
    ``k`` alone would have produced.  Generators are consumed in place.
    """

    def __init__(self, rngs: Sequence[np.random.Generator]):
        self.rngs = list(rngs)
        if not self.rngs:
            raise ValueError("StackedRNG needs at least one generator")
        self.bit_generator = _StackedBitGenerator(self.rngs)

    def __len__(self) -> int:
        return len(self.rngs)

    def _check(self, shape) -> tuple[int, ...]:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        if not shape or shape[0] != len(self.rngs):
            raise ValueError(f"stacked draw shape {shape} must lead with "
                             f"the seed axis K={len(self.rngs)}")
        return shape[1:]

    def standard_normal(self, shape) -> np.ndarray:
        tail = self._check(shape)
        return np.stack([rng.standard_normal(tail) for rng in self.rngs])

    def normal(self, loc=0.0, scale=1.0, size=None) -> np.ndarray:
        tail = self._check(size)
        return np.stack([rng.normal(loc, scale, tail) for rng in self.rngs])

    def random(self, shape) -> np.ndarray:
        tail = self._check(shape)
        return np.stack([rng.random(tail) for rng in self.rngs])

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        tail = self._check(size)
        return np.stack([rng.uniform(low, high, tail) for rng in self.rngs])

    def integers(self, low, high=None, size=None) -> np.ndarray:
        tail = self._check(size)
        return np.stack([rng.integers(low, high, tail) for rng in self.rngs])


def stacked_step_rng(seeds: Sequence[int], epoch: int,
                     step: int = 0) -> StackedRNG:
    """Per-``(seed, epoch, step)`` streams, one per stacked seed.

    The stacked twin of :func:`repro.train.step_rng`: seed ``k``'s
    stream is exactly ``step_rng(seeds[k], epoch, step)``, so a stacked
    task using order-independent per-step streams reproduces each
    per-seed fit's draws without sharing a sequential generator.
    """
    from .trainer import step_rng

    return StackedRNG([step_rng(seed, epoch, step) for seed in seeds])
