"""Thin stdlib HTTP client for the ``repro serve`` daemon.

Used by ``repro generate --server`` / ``repro evaluate --server`` and by
``benchmarks/bench_serving.py``; anything else that speaks JSON over
HTTP works just as well — the client only wraps ``urllib`` with the
daemon's error conventions (``429 + Retry-After`` backoff, JSON error
bodies surfaced as :class:`ServeClientError`).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np

__all__ = ["ServeClient", "ServeClientError", "ServerBusy"]


class ServeClientError(Exception):
    """Non-2xx daemon response, carrying the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServerBusy(ServeClientError):
    """``429``: the admission queue is full; retry after a delay."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServeClient:
    """Client for one daemon at ``base_url`` (e.g. ``http://host:port``).

    ``retries`` bounds automatic backoff on ``429`` responses: the
    client sleeps the server's ``Retry-After`` hint and resubmits, up to
    that many times, before surfacing :class:`ServerBusy`.
    """

    def __init__(self, base_url: str, *, timeout: float = 300.0,
                 retries: int = 0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (json.JSONDecodeError, OSError):
                message = str(exc)
            if exc.code == 429:
                retry_after = float(exc.headers.get("Retry-After", 1) or 1)
                raise ServerBusy(message, retry_after) from None
            raise ServeClientError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    def _post_with_backoff(self, path: str, payload: dict) -> dict:
        for attempt in range(self.retries + 1):
            try:
                return self._request("POST", path, payload)
            except ServerBusy as busy:
                if attempt == self.retries:
                    raise
                time.sleep(busy.retry_after)
        raise AssertionError("unreachable")

    # -- API -----------------------------------------------------------
    def generate(self, model: str, n_walks: int, *,
                 length: int | None = None, seed: int = 0,
                 temperature: float = 1.0, chunk: int = 256,
                 starts=None, timeout: float | None = None) -> np.ndarray:
        """Request walks; returns the ``(n_walks, length)`` array.

        For a given ``(model, seed, temperature, chunk, starts)`` the
        result is byte-identical to the standalone
        ``sample_chunked`` call with the same arguments — the serving
        engine's determinism contract.
        """
        payload: dict = {"model": model, "n_walks": n_walks,
                         "seed": seed, "temperature": temperature,
                         "chunk": chunk}
        if length is not None:
            payload["length"] = length
        if starts is not None:
            payload["starts"] = np.asarray(starts).tolist()
        if timeout is not None:
            payload["timeout"] = timeout
        reply = self._post_with_backoff("/generate", payload)
        return np.asarray(reply["walks"], dtype=np.int64)

    def evaluate(self, model: str) -> dict:
        """Discrepancy scoreboard of the cached artifact under ``model``."""
        return self._post_with_backoff("/evaluate", {"model": model})

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")
