"""Continuous-batching walk decode: the serving engine.

Standalone generation (:meth:`TransformerWalkModel.sample`) decodes one
request at a time: a prefill pass, then one KV-cached step per token for
that request's walks only.  Under concurrent serving traffic that leaves
the per-step fixed costs (python dispatch, one backend call per op per
layer) unamortised — every request pays them alone.

:class:`ContinuousBatcher` coalesces concurrent requests of *different*
walk lengths into one decode batch, the trick production LLM servers
use:

* each request is prefilled in isolation through an ordinary
  :class:`~repro.nn.inference.WalkDecoder`, then its per-layer KV rows
  are transplanted into the shared batch caches
  (:meth:`~repro.nn.attention.LayerKVCache.append_cache`);
* every engine step advances **all** resident walks by one token in a
  single fused forward — ONE :meth:`~repro.nn.backend.Backend.decode_step`
  call against engine-owned scratch buffers, where the dense projections
  and feed-forward run over the whole coalesced batch while attention and
  the vocabulary head run per request group over exact (unpadded) cache
  slices;
* with ``lookahead=k`` each engine tick advances resident walks up to
  ``k`` tokens (``k`` fused forwards back to back) before returning to
  admission, amortising the per-tick admission/bookkeeping overhead;
* walks that reach their requested length are swapped out
  (:meth:`~repro.nn.attention.LayerKVCache.gather_rows`) and queued
  requests are admitted in their place, so the batch stays full while
  traffic lasts.

Determinism contract
--------------------
A served walk is **byte-identical** to the same walk generated
standalone.  Two properties make that hold by construction:

* every request keeps its own RNG, consumed exactly as
  ``sample`` consumes it (one ``rng.random((n, 1))`` draw per decoded
  token, in walk order), and a request's walks always advance in
  lockstep — how the engine partitions those tokens into ticks
  (``lookahead``) cannot reorder a single request's draws;
* every array op either is row-wise (embedding, layer norm, GELU,
  residual adds), a stacked per-row matmul (the 3-D ``(B, 1, D) @ (D,
  D')`` projections, which NumPy evaluates as independent per-row
  GEMMs), or runs on the request's *exact* rows-and-length slice
  (attention scores/softmax/context and the final vocabulary head) —
  so no value ever depends on which other requests share the batch,
  and no padding position ever enters a softmax sum.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..nn.attention import LayerKVCache
from ..nn.backend import active as _backend
from ..nn.inference import WalkDecoder, _WalkWeights
from ..obs import trace
from ..obs.metrics import MetricsRegistry

__all__ = ["ContinuousBatcher", "WalkTicket", "EngineStats", "serve_walks"]

#: powers-of-two row-occupancy buckets for the batch histogram
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class WalkTicket:
    """Handle for one submitted walk request.

    The engine thread fulfils the ticket; any thread may :meth:`result`
    it.  ``cancel`` withdraws a still-queued request (a request already
    decoding runs to completion; its walks are simply discarded).
    """

    __slots__ = ("n_walks", "length", "_done", "_walks", "_error",
                 "cancelled", "submitted_at", "finished_at")

    def __init__(self, n_walks: int, length: int) -> None:
        self.n_walks = n_walks
        self.length = length
        self._done = threading.Event()
        self._walks: np.ndarray | None = None
        self._error: BaseException | None = None
        self.cancelled = False
        self.submitted_at = time.perf_counter()
        self.finished_at: float | None = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def _finish(self, walks: np.ndarray) -> None:
        self._walks = walks
        self.finished_at = time.perf_counter()
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.finished_at = time.perf_counter()
        self._done.set()

    def cancel(self) -> bool:
        """Withdraw the request; ``True`` if it had not completed yet."""
        if self._done.is_set():
            return False
        self.cancelled = True
        return True

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The ``(n_walks, length)`` walks; blocks until decoded.

        Raises :class:`TimeoutError` if the engine has not finished the
        request within ``timeout`` seconds (the request keeps its queue
        slot unless the caller also :meth:`cancel`\\ s it).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"walk request ({self.n_walks}x{self.length}) not decoded "
                f"within {timeout:g}s")
        if self._error is not None:
            raise self._error
        return self._walks


class _ActiveRequest:
    """One request resident in the decode batch."""

    __slots__ = ("ticket", "n", "length", "temperature", "rng", "tokens",
                 "pending_ids")

    def __init__(self, ticket: WalkTicket, n: int, length: int,
                 temperature: float, rng: np.random.Generator,
                 tokens: np.ndarray, pending_ids: np.ndarray) -> None:
        self.ticket = ticket
        self.n = n
        self.length = length
        self.temperature = temperature
        self.rng = rng
        #: all tokens so far, prompt included — ``(n, t)``; the walk is
        #: complete once ``t == length + 1`` (column 0 is the prompt's
        #: start token, exactly as in ``sample``)
        self.tokens = tokens
        #: last sampled ids, the next step's input — ``(n,)``
        self.pending_ids = pending_ids


class EngineStats:
    """Monotone counters of one engine's lifetime (for ``/stats``).

    Registry-backed: each counter is a labeled series
    (``engine=<name>``) in a :class:`MetricsRegistry` — a private
    registry by default, so engines constructed directly (tests,
    benchmarks) never share counts; the daemon passes its own registry
    so every engine's series lands on ``GET /metrics``.

    Every mutation goes through the registry lock.  This also closes
    the one real race of the hand-rolled int counters: ``submit()``
    runs on arbitrary HTTP handler threads under ThreadingHTTPServer,
    so its ``submitted += 1`` read-modify-write could drop increments;
    all the other counters only ever moved on the decode thread.
    """

    _FIELDS = ("submitted", "admitted", "completed", "cancelled",
               "steps", "rows_decoded")

    def __init__(self, registry: MetricsRegistry | None = None,
                 engine: str = "engine") -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self.engine = engine
        self._counters = {
            "submitted": registry.counter(
                "serve_engine_submitted_total", "Walk requests submitted"),
            "admitted": registry.counter(
                "serve_engine_admitted_total",
                "Requests admitted into the decode batch"),
            "completed": registry.counter(
                "serve_engine_completed_total", "Requests fulfilled"),
            "cancelled": registry.counter(
                "serve_engine_cancelled_total",
                "Requests cancelled before admission"),
            "steps": registry.counter(
                "serve_engine_steps_total", "Fused decode steps"),
            "rows_decoded": registry.counter(
                "serve_engine_rows_decoded_total",
                "Walk rows advanced across all decode steps"),
        }
        self._peak = registry.gauge(
            "serve_engine_peak_batch", "Peak decode-batch row occupancy")
        self._batch_rows = registry.histogram(
            "serve_engine_batch_rows",
            "Decode-batch row occupancy per step", buckets=_BATCH_BUCKETS)
        self._decode_rows = registry.histogram(
            "serve_engine_decode_rows_per_call",
            "Walk rows advanced per fused decode_step call",
            buckets=_BATCH_BUCKETS)

    def note(self, field: str, amount: int = 1) -> None:
        self._counters[field].inc(amount, engine=self.engine)

    def note_step(self, batch: int) -> None:
        self._counters["steps"].inc(engine=self.engine)
        self._counters["rows_decoded"].inc(batch, engine=self.engine)
        self._peak.set_max(batch, engine=self.engine)
        self._batch_rows.observe(batch, engine=self.engine)

    def note_decode_call(self, rows: int) -> None:
        self._decode_rows.observe(rows, engine=self.engine)

    def _value(self, field: str) -> int:
        return int(self._counters[field].value(engine=self.engine))

    @property
    def submitted(self) -> int:
        return self._value("submitted")

    @property
    def admitted(self) -> int:
        return self._value("admitted")

    @property
    def completed(self) -> int:
        return self._value("completed")

    @property
    def cancelled(self) -> int:
        return self._value("cancelled")

    @property
    def steps(self) -> int:
        return self._value("steps")

    @property
    def rows_decoded(self) -> int:
        return self._value("rows_decoded")

    @property
    def peak_batch(self) -> int:
        return int(self._peak.value(engine=self.engine))

    def as_dict(self) -> dict:
        out = {name: self._value(name) for name in self._FIELDS}
        out["peak_batch"] = self.peak_batch
        return out


class ContinuousBatcher:
    """Coalesces concurrent walk requests into one KV-cached decode batch.

    Parameters
    ----------
    model:
        A (fitted, ``eval()``-mode) :class:`TransformerWalkModel`.  The
        engine views its parameter arrays; it must not outlive an
        in-place parameter update.
    max_walks:
        Upper bound on resident walk rows.  Requests whose walks do not
        fit wait in the admission deque and are swapped in as running
        walks finish; a single request larger than ``max_walks`` is
        rejected at :meth:`submit`.
    lookahead:
        Tokens decoded per engine tick (default 1, today's behaviour).
        Each :meth:`step` admits once, then runs up to ``lookahead``
        fused decode forwards back to back before the next admission
        pass — queued requests wait at most ``lookahead`` tokens longer
        for a slot, in exchange for fewer admission/bookkeeping passes
        per decoded token.  Served walks are byte-identical for every
        setting: each request's draws and attention slices depend only
        on its own state, never on tick partitioning.

    Thread model: any number of threads may :meth:`submit`; exactly one
    thread drives :meth:`step` (directly, via :meth:`drain`, or via the
    :meth:`run` loop the daemon uses).
    """

    def __init__(self, model, *, max_walks: int = 256,
                 lookahead: int = 1,
                 registry: MetricsRegistry | None = None,
                 name: str = "engine") -> None:
        if max_walks < 1:
            raise ValueError("max_walks must be >= 1")
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self._model = model
        self._weights = _WalkWeights(model)
        self.max_walks = max_walks
        self.lookahead = lookahead
        # Engine-owned decode_step scratch; scratch_buffer() re-sizes
        # entries in place whenever the resident batch changes shape.
        self._scratch: dict = {}
        self._pending: deque[tuple] = deque()
        self._active: list[_ActiveRequest] = []
        self._caches: list[LayerKVCache] = [
            LayerKVCache(capacity=self._weights.positions.shape[0])
            for _ in self._weights.blocks]
        self._work = threading.Event()
        self.stats = EngineStats(registry, name)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, n_walks: int, length: int, rng: np.random.Generator,
               temperature: float = 1.0,
               starts: np.ndarray | None = None) -> WalkTicket:
        """Queue a walk request; returns a :class:`WalkTicket`.

        Arguments mirror :meth:`TransformerWalkModel.sample` and are
        validated here (synchronously) so API-level errors surface to
        the caller, not inside the decode loop.
        """
        model = self._model
        if n_walks < 1:
            raise ValueError("n_walks must be >= 1")
        if n_walks > self.max_walks:
            raise ValueError(f"n_walks {n_walks} exceeds the engine's "
                             f"max_walks {self.max_walks}; chunk the "
                             "request (see serve_walks)")
        if length < 1:
            raise ValueError("length must be >= 1")
        if length > model.max_length:
            raise ValueError("length exceeds the configured maximum")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        if starts is not None:
            starts = np.asarray(starts, dtype=np.int64).reshape(-1)
            if starts.shape[0] != n_walks:
                raise ValueError(f"starts has {starts.shape[0]} entries "
                                 f"for {n_walks} walks")
            if starts.size and (starts.min() < 0
                                or starts.max() >= model.num_nodes):
                raise ValueError("starts contains out-of-range node ids")
        ticket = WalkTicket(n_walks, length)
        self._pending.append((ticket, n_walks, length, temperature, rng,
                              starts))
        # Registry-locked: submit() runs on arbitrary caller threads.
        self.stats.note("submitted")
        self._work.set()
        return ticket

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def active_walks(self) -> int:
        return sum(req.n for req in self._active)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._active

    # ------------------------------------------------------------------
    # Admission / eviction
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Move queued requests into the batch while they fit.

        Admission order is strictly FIFO — a large request at the head
        waits for room rather than being overtaken by smaller ones, so
        no request can starve.
        """
        model = self._model
        while self._pending:
            ticket = self._pending[0][0]
            if ticket.cancelled:
                self._pending.popleft()
                self.stats.note("cancelled")
                continue
            if self._active and \
                    self.active_walks + self._pending[0][1] > self.max_walks:
                break
            ticket, n, length, temperature, rng, starts = \
                self._pending.popleft()
            self.stats.note("admitted")
            # Replay the standalone ``sample`` flow exactly: build the
            # prompt, prefill it in isolation, draw the first token from
            # the request's own RNG — then join the shared batch.
            tokens = model._sampling_prompt(n, length, temperature, starts)
            if tokens.shape[1] >= length + 1:
                # starts pinned and length == 1: nothing to decode.
                ticket._finish(tokens[:, 1:])
                self.stats.note("completed")
                continue
            with trace.span("serve.prefill", walks=n, length=length):
                decoder = WalkDecoder(model)
                logits = decoder.prefill(tokens)
                next_ids = model._sample_step(logits, temperature,
                                              model.num_nodes, rng)
            tokens = np.concatenate([tokens, next_ids[:, None]], axis=1)
            if tokens.shape[1] >= length + 1:
                ticket._finish(tokens[:, 1:])
                self.stats.note("completed")
                continue
            for batch_cache, donor in zip(self._caches, decoder.caches):
                batch_cache.append_cache(donor)
            self._active.append(_ActiveRequest(ticket, n, length,
                                               temperature, rng, tokens,
                                               next_ids))

    def _evict(self, finished: list[int]) -> None:
        """Swap finished requests out of the batch, compacting the rest."""
        keep_rows: list[np.ndarray] = []
        offset = 0
        survivors = []
        for i, req in enumerate(self._active):
            if i not in finished:
                keep_rows.append(np.arange(offset, offset + req.n))
                survivors.append(req)
            offset += req.n
        rows = (np.concatenate(keep_rows) if keep_rows
                else np.empty(0, dtype=np.int64))
        for cache in self._caches:
            cache.gather_rows(rows)
        self._active = survivors

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Admit what fits, then advance resident walks ``lookahead`` tokens.

        Returns the number of walk rows decoded this tick (0 when the
        engine is idle).  Completed requests are fulfilled and evicted
        after every inner decode forward — not just at tick end — so
        a request never decodes past its length under lookahead; their
        batch slots free up for the next tick's admission pass.
        """
        self._admit()
        if not self._active:
            return 0
        model = self._model
        total = 0
        with trace.span("serve.step", batch=self.active_walks,
                        requests=len(self._active),
                        lookahead=self.lookahead):
            for _ in range(self.lookahead):
                if not self._active:
                    break
                batch = self.active_walks
                self.stats.note_step(batch)
                total += batch
                groups: list[tuple[int, int, int]] = []  # (row0,row1,new_len)
                offset = 0
                for req in self._active:
                    groups.append((offset, offset + req.n,
                                   req.tokens.shape[1]))
                    offset += req.n
                tokens = np.concatenate(
                    [req.pending_ids for req in self._active])[:, None]
                logits = self._forward_step(tokens, groups)

                finished: list[int] = []
                for i, (req, (row0, row1, _)) in enumerate(
                        zip(self._active, groups)):
                    next_ids = model._sample_step(logits[row0:row1],
                                                  req.temperature,
                                                  model.num_nodes, req.rng)
                    req.tokens = np.concatenate(
                        [req.tokens, next_ids[:, None]], axis=1)
                    if req.tokens.shape[1] >= req.length + 1:
                        req.ticket._finish(req.tokens[:, 1:])
                        self.stats.note("completed")
                        finished.append(i)
                    else:
                        req.pending_ids = next_ids
                if finished:
                    self._evict(finished)
        return total

    def _forward_step(self, tokens: np.ndarray,
                      groups: list[tuple[int, int, int]]) -> np.ndarray:
        """One whole-step fused decode over the coalesced ragged batch.

        ``tokens`` is ``(B, 1)``; ``groups`` lists each request's
        contiguous ``(row0, row1, new_length)`` — its rows and the cache
        length *after* this step's append.  The entire forward is a
        single :meth:`~repro.nn.backend.Backend.decode_step` call in
        ragged mode against the engine's scratch buffers; the per-row
        position index and the per-group attention/head slices keep
        every request value-exact (see the module docstring).
        """
        rows = tokens.shape[0]
        self.stats.note_decode_call(rows)
        with trace.span("serve.decode_step", rows=rows,
                        groups=len(groups)):
            return _backend().decode_step(
                self._weights, self._caches, tokens,
                self._caches[0].row_lengths, groups=groups,
                scratch=self._scratch)

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Step until every submitted request has completed."""
        while not self.idle:
            self.step()

    def run(self, stop: threading.Event, idle_wait: float = 0.05) -> None:
        """Decode-loop body for a dedicated engine thread.

        Steps while work exists; parks on the submission event when
        idle.  ``stop`` ends the loop — after draining resident work, so
        a graceful daemon shutdown never abandons admitted walks.
        """
        while True:
            if self.step() == 0:
                if stop.is_set():
                    if self.idle:
                        return
                    continue  # drain what was admitted before the stop
                self._work.wait(idle_wait)
                self._work.clear()
            elif stop.is_set() and self.idle:
                return


def serve_walks(engine: ContinuousBatcher, n_walks: int, length: int,
                rng: np.random.Generator, temperature: float = 1.0,
                chunk: int = 256, starts_fn=None,
                starts: np.ndarray | None = None,
                deadline: float | None = None) -> np.ndarray:
    """Generate ``n_walks`` walks through the engine, chunk by chunk.

    The serving twin of :meth:`TransformerWalkModel.sample_chunked` —
    byte-identical output for the same arguments and RNG, including
    ``starts_fn`` (FairGen's protected-coverage hook, which must consume
    the shared RNG *before* each chunk's sampling draws, exactly as the
    standalone path does).  Chunks of one request serialise on their
    shared RNG; concurrency comes from other requests coalescing into
    the same decode batch.

    ``deadline`` is an absolute ``time.monotonic()`` instant; crossing
    it cancels the remaining work and raises :class:`TimeoutError`.
    """
    if starts is not None and starts_fn is not None:
        raise ValueError("pass starts or starts_fn, not both")
    if starts is not None:
        starts = np.asarray(starts, dtype=np.int64).reshape(-1)
        if starts.shape[0] != n_walks:
            raise ValueError(f"starts has {starts.shape[0]} entries for "
                             f"{n_walks} walks")
    chunks: list[np.ndarray] = []
    done = 0
    while done < n_walks:
        take = min(n_walks - done, chunk)
        if starts_fn is not None:
            chunk_starts = starts_fn(take, rng)
        elif starts is not None:
            chunk_starts = starts[done: done + take]
        else:
            chunk_starts = None
        ticket = engine.submit(take, length, rng, temperature=temperature,
                               starts=chunk_starts)
        timeout = None
        if deadline is not None:
            timeout = max(deadline - time.monotonic(), 0.0)
        try:
            chunks.append(ticket.result(timeout=timeout))
        except TimeoutError:
            ticket.cancel()
            raise
        done += take
    return np.concatenate(chunks, axis=0)
