"""``repro serve`` — the stdlib-only generation daemon.

A long-lived HTTP process in front of the continuous-batching engine
(:mod:`repro.serve.engine`), so generation traffic stops paying model
load plus a cold decode per call:

* **Model LRU** (:class:`ModelHouse`): fitted models are mmap-loaded
  from the experiment Runner's artifact cache on first use
  (``<key>.model.npz`` + the ``<key>.json`` sidecar that names the
  dataset, whose graph the loader needs) and kept resident, least
  recently used evicted first.  ``load_model(..., mmap=True)`` means a
  resident model costs page cache, not heap.
* **Admission control** (:class:`AdmissionControl`): a bounded counter
  of requests in the system (decoding + queued).  Overflow is answered
  ``429`` with a ``Retry-After`` hint instead of unbounded queueing;
  each admitted request carries a deadline and times out server-side.
* **Endpoints**: ``POST /generate`` (model key, n_walks, length,
  temperature, seed, starts), ``POST /evaluate`` (model key →
  discrepancy scoreboard), ``GET /healthz``, ``GET /stats``.
* **Graceful shutdown**: SIGTERM/SIGINT stop the accept loop, in-flight
  requests drain through the still-running decode thread, and only then
  does the process exit (see :meth:`ServeDaemon.shutdown`).

The server matches the scheduler's no-dependencies style: threaded
``http.server``, JSON bodies, nothing outside the standard library.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from .engine import ContinuousBatcher, serve_walks

__all__ = ["ModelHouse", "AdmissionControl", "ServeDaemon", "ServeError"]


class ServeError(Exception):
    """An error with an HTTP status, raised inside request handling."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _walk_interface(model):
    """(walk_model, default_length, starts_fn) of a served model.

    Every ``sample_chunked`` user is servable: TagGen and FairGen wrap a
    :class:`TransformerWalkModel` (FairGen adds its protected-coverage
    ``starts_fn``), and a bare ``TransformerWalkModel`` serves as-is
    (the test/bench `adopt` path).  Anything else — ER, BA, GAE, … —
    has no walk decoder to batch, so requesting it is a client error.
    """
    from ..core.fairgen import FairGen
    from ..models.taggen import TagGen
    from ..models.walk_lm import TransformerWalkModel

    if isinstance(model, TagGen):
        return model.model, model.walk_length, None
    if isinstance(model, FairGen):
        return model.generator, model.config.walk_length, \
            model._generation_starts
    if isinstance(model, TransformerWalkModel):
        return model, model.max_length, None
    raise ServeError(
        400, f"model class {type(model).__name__} has no walk generator "
             "to serve (only TagGen, FairGen and TransformerWalkModel "
             "artifacts can be decoded)")


class _Resident:
    """One resident model: the artifact plus its decode engine."""

    __slots__ = ("key", "model", "walk_model", "default_length",
                 "starts_fn", "engine")

    def __init__(self, key: str, model, *, max_walks: int,
                 lookahead: int = 1,
                 registry: MetricsRegistry | None = None) -> None:
        self.key = key
        self.model = model
        self.walk_model, self.default_length, self.starts_fn = \
            _walk_interface(model)
        self.engine = ContinuousBatcher(self.walk_model,
                                        max_walks=max_walks,
                                        lookahead=lookahead,
                                        registry=registry, name=key)


class ModelHouse:
    """LRU of resident models backed by the Runner's artifact cache.

    ``get(key)`` resolves a spec cache key (``ExperimentSpec.cache_key``
    — e.g. ``taggen__EMAIL__smoke__s0``) against ``cache_dir``: the
    ``<key>.json`` sidecar names the dataset whose graph the model was
    fitted on, and ``<key>.model.npz`` is mmap-loaded against it.  At
    most ``max_models`` stay resident; eviction takes the least recently
    used model whose engine is idle (a busy engine is never evicted —
    the house temporarily exceeds its bound rather than abandoning
    admitted walks).
    """

    def __init__(self, cache_dir: str | Path | None, *,
                 max_models: int = 4, max_walks: int = 256,
                 lookahead: int = 1,
                 registry: MetricsRegistry | None = None) -> None:
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_models = max_models
        self.max_walks = max_walks
        self.lookahead = lookahead
        self._residents: OrderedDict[str, _Resident] = OrderedDict()
        self._lock = threading.Lock()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._m_loads = self.registry.counter(
            "serve_models_loaded_total",
            "Models loaded from the artifact cache")
        self._m_evictions = self.registry.counter(
            "serve_models_evicted_total", "Resident models LRU-evicted")
        self._m_hits = self.registry.counter(
            "serve_model_hits_total",
            "Requests answered by an already-resident model")

    @property
    def loads(self) -> int:
        return int(self._m_loads.value())

    @property
    def evictions(self) -> int:
        return int(self._m_evictions.value())

    @property
    def hits(self) -> int:
        return int(self._m_hits.value())

    def adopt(self, key: str, model) -> None:
        """Install an in-process model under ``key`` (tests, benches)."""
        resident = _Resident(key, model, max_walks=self.max_walks,
                             lookahead=self.lookahead,
                             registry=self.registry)
        with self._lock:
            self._residents[key] = resident
            self._residents.move_to_end(key)
            self._shrink()

    def get(self, key: str) -> _Resident:
        with self._lock:
            resident = self._residents.get(key)
            if resident is not None:
                self._residents.move_to_end(key)
                self._m_hits.inc()
                return resident
        # Load outside the lock (disk + graph build can take a while);
        # a racing duplicate load is harmless — last one wins the slot.
        with trace.span("serve.model_load", model=key):
            resident = _Resident(key, self._load(key),
                                 max_walks=self.max_walks,
                                 lookahead=self.lookahead,
                                 registry=self.registry)
        with self._lock:
            self._residents[key] = resident
            self._residents.move_to_end(key)
            self._m_loads.inc()
            self._shrink()
        return resident

    def _load(self, key: str):
        from ..core.serialization import load_model
        from ..data import load_dataset

        if self.cache_dir is None:
            raise ServeError(404, f"unknown model {key!r} (no artifact "
                                  "cache configured)")
        if "/" in key or "\\" in key or ".." in key:
            raise ServeError(400, f"invalid model key {key!r}")
        meta_path = self.cache_dir / f"{key}.json"
        model_path = self.cache_dir / f"{key}.model.npz"
        if not meta_path.exists() or not model_path.exists():
            raise ServeError(404, f"no fitted model {key!r} in "
                                  f"{self.cache_dir} (need <key>.json + "
                                  "<key>.model.npz; produce them with a "
                                  "need_model run or `repro sweep`)")
        try:
            meta = json.loads(meta_path.read_text())
            dataset = load_dataset(meta["spec"]["dataset"])
            return load_model(model_path, dataset.graph, mmap=True)
        except ServeError:
            raise
        except (ValueError, KeyError, OSError,
                json.JSONDecodeError) as exc:
            raise ServeError(500, f"failed to load model {key!r}: {exc}")

    def _shrink(self) -> None:
        # caller holds the lock
        while len(self._residents) > self.max_models:
            victim = next((k for k, r in self._residents.items()
                           if r.engine.idle), None)
            if victim is None:
                return  # everyone is decoding; retry on the next access
            del self._residents[victim]
            self._m_evictions.inc()

    def engines(self) -> list[ContinuousBatcher]:
        with self._lock:
            return [r.engine for r in self._residents.values()]

    def resident_keys(self) -> list[str]:
        with self._lock:
            return list(self._residents)


class AdmissionControl:
    """Bounded count of requests in the system (decoding + queued).

    ``max_inflight`` is the target number of concurrently decoding
    requests and ``queue_depth`` the extra headroom allowed to wait
    behind them; past ``max_inflight + queue_depth`` the daemon answers
    ``429`` with a ``Retry-After`` hint instead of queueing without
    bound — the client, not the server, holds the backlog.
    """

    def __init__(self, max_inflight: int = 8, queue_depth: int = 16,
                 registry: MetricsRegistry | None = None) -> None:
        if max_inflight < 1 or queue_depth < 0:
            raise ValueError("need max_inflight >= 1 and queue_depth >= 0")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self._lock = threading.Lock()
        self._in_system = 0
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._m_accepted = self.registry.counter(
            "serve_admission_accepted_total", "Requests admitted")
        self._m_rejected = self.registry.counter(
            "serve_admission_rejected_total",
            "Requests rejected with 429 (admission queue full)")
        self._m_completed = self.registry.counter(
            "serve_admission_completed_total",
            "Admitted requests that left the system")
        self._g_in_system = self.registry.gauge(
            "serve_admission_in_system",
            "Requests currently in the system (decoding + queued)")

    @property
    def limit(self) -> int:
        return self.max_inflight + self.queue_depth

    @property
    def in_system(self) -> int:
        return self._in_system

    @property
    def accepted(self) -> int:
        return int(self._m_accepted.value())

    @property
    def rejected(self) -> int:
        return int(self._m_rejected.value())

    @property
    def completed(self) -> int:
        return int(self._m_completed.value())

    def enter(self) -> bool:
        with self._lock:
            if self._in_system >= self.limit:
                self._m_rejected.inc()
                return False
            self._in_system += 1
            self._g_in_system.set(self._in_system)
            self._m_accepted.inc()
            return True

    def leave(self) -> None:
        with self._lock:
            self._in_system -= 1
            self._g_in_system.set(self._in_system)
            self._m_completed.inc()

    def retry_after(self) -> int:
        """Crude backoff hint: a second per queued-beyond-target batch."""
        with self._lock:
            backlog = max(self._in_system - self.max_inflight, 0)
        return max(1, min(30, backlog // max(self.max_inflight, 1) + 1))

    def snapshot(self) -> dict:
        with self._lock:
            return {"in_system": self._in_system,
                    "max_inflight": self.max_inflight,
                    "queue_depth": self.queue_depth,
                    "accepted": self.accepted,
                    "rejected": self.rejected,
                    "completed": self.completed}


def _positive_int(body: dict, name: str, default: int | None,
                  minimum: int = 1) -> int:
    value = body.get(name, default)
    if value is None:
        raise ServeError(400, f"missing required field {name!r}")
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ServeError(400, f"{name!r} must be an integer >= {minimum}")
    return value


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the daemon instance rides on the server object."""

    protocol_version = "HTTP/1.1"
    daemon: "ServeDaemon"  # set via the server attribute

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: A003 - http.server API
        if self.server.daemon.verbose:
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict,
               headers: dict | None = None) -> None:
        self._reply_raw(status, json.dumps(payload).encode(),
                        "application/json", headers)

    def _reply_raw(self, status: int, body: bytes, content_type: str,
                   headers: dict | None = None) -> None:
        self.server.daemon._m_responses.inc(status=str(status))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ServeError(400, "missing JSON request body")
        try:
            body = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ServeError(400, f"invalid JSON body: {exc}")
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                self._reply(200, self.server.daemon.healthz())
            elif self.path == "/stats":
                self._reply(200, self.server.daemon.stats())
            elif self.path == "/metrics":
                text = self.server.daemon.registry.render_prometheus()
                self._reply_raw(200, text.encode(),
                                "text/plain; version=0.0.4")
            else:
                raise ServeError(404, f"no route {self.path!r}")
        except ServeError as exc:
            self._reply(exc.status, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        daemon = self.server.daemon
        route = self.path
        started = time.perf_counter()
        try:
            if route == "/generate":
                body = self._read_body()
                if not daemon.admission.enter():
                    self._reply(
                        429,
                        {"error": "admission queue full, retry later"},
                        {"Retry-After": str(daemon.admission.retry_after())})
                    return
                try:
                    with trace.span("serve.request", route=route):
                        payload = daemon.generate(body)
                    self._reply(200, payload)
                finally:
                    daemon.admission.leave()
            elif route == "/evaluate":
                with trace.span("serve.request", route=route):
                    payload = daemon.evaluate(self._read_body())
                self._reply(200, payload)
            else:
                raise ServeError(404, f"no route {route!r}")
        except ServeError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except TimeoutError as exc:
            self._reply(504, {"error": str(exc)})
        except Exception as exc:  # don't kill the connection thread
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            # Clamp unknown paths to one label value: clients must not be
            # able to mint unbounded label cardinality.
            label = route if route in ("/generate", "/evaluate") else "other"
            daemon._h_latency.observe(time.perf_counter() - started,
                                      route=label)


class _Server(ThreadingHTTPServer):
    # Joining handler threads on server_close() is the second leg of the
    # graceful drain: no request is abandoned mid-decode.
    daemon_threads = False
    block_on_close = True
    daemon: "ServeDaemon"


class ServeDaemon:
    """The ``repro serve`` process object (HTTP front + decode thread).

    One background thread owns every engine step (the engines require a
    single driver); handler threads only submit requests and block on
    their tickets.  :meth:`shutdown` drains: stop accepting, let
    in-flight handlers finish (their tickets are fulfilled because the
    decode thread keeps stepping), then stop the decode thread.
    """

    def __init__(self, cache_dir: str | Path | None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_models: int = 4, max_walks: int = 256,
                 lookahead: int = 1,
                 max_inflight: int = 8, queue_depth: int = 16,
                 request_timeout: float = 120.0,
                 verbose: bool = False,
                 registry: MetricsRegistry | None = None) -> None:
        # The daemon defaults to the process-wide registry so one
        # `GET /metrics` scrape covers every layer (engines, admission,
        # Runner, Trainer); pass a private registry to isolate.
        self.registry = registry if registry is not None else get_registry()
        self.house = ModelHouse(cache_dir, max_models=max_models,
                                max_walks=max_walks,
                                lookahead=lookahead,
                                registry=self.registry)
        self.admission = AdmissionControl(max_inflight=max_inflight,
                                          queue_depth=queue_depth,
                                          registry=self.registry)
        self._m_responses = self.registry.counter(
            "serve_http_responses_total",
            "HTTP responses sent, by status code")
        self._h_latency = self.registry.histogram(
            "serve_request_seconds",
            "Wall-clock seconds per POST request, by route")
        self.request_timeout = request_timeout
        self.verbose = verbose
        self.started_at = time.monotonic()
        self._eval_runner = None
        self._eval_lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self
        self._decode_thread = threading.Thread(
            target=self._decode_loop, name="repro-serve-decode", daemon=True)
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the decode thread and the HTTP accept loop (non-block)."""
        self._decode_thread.start()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept", daemon=True)
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (the CLI's blocking entry)."""
        self._decode_thread.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._finish_shutdown()

    def shutdown(self) -> None:
        """Drain and stop: no admitted request is abandoned.

        1. stop the accept loop — new connections are refused;
        2. join the handler threads (``block_on_close``) — every
           in-flight request runs to completion, with the decode thread
           still fulfilling tickets underneath it;
        3. stop the decode thread, which itself drains any walks still
           resident in the engines before exiting.
        """
        self._server.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._finish_shutdown()
        # else: serve_forever's finally runs _finish_shutdown

    def _finish_shutdown(self) -> None:
        self._server.server_close()  # joins in-flight handler threads
        self._stop.set()
        self._wake.set()
        if self._decode_thread.is_alive():
            self._decode_thread.join()

    # -- decode loop ---------------------------------------------------
    def _decode_loop(self) -> None:
        while True:
            worked = 0
            for engine in self.house.engines():
                worked += engine.step()
            if worked:
                continue
            if self._stop.is_set():
                if all(engine.idle for engine in self.house.engines()):
                    return
                continue  # drain admitted walks before exiting
            self._wake.wait(0.02)
            self._wake.clear()

    # -- request execution ---------------------------------------------
    def generate(self, body: dict) -> dict:
        key = body.get("model")
        if not isinstance(key, str) or not key:
            raise ServeError(400, "field 'model' (spec cache key) is "
                                  "required")
        resident = self.house.get(key)
        n_walks = _positive_int(body, "n_walks", 64)
        length = _positive_int(body, "length", resident.default_length)
        chunk = _positive_int(body, "chunk", 256)
        seed = body.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ServeError(400, "'seed' must be an integer")
        temperature = body.get("temperature", 1.0)
        if not isinstance(temperature, (int, float)) \
                or isinstance(temperature, bool) or temperature <= 0:
            raise ServeError(400, "'temperature' must be a positive number")
        timeout = body.get("timeout", self.request_timeout)
        starts = None
        starts_fn = resident.starts_fn
        if body.get("starts") is not None:
            try:
                starts = np.asarray(body["starts"], dtype=np.int64)
            except (TypeError, ValueError):
                raise ServeError(400, "'starts' must be a list of node ids")
            starts_fn = None  # explicit starts override the model's hook

        rng = np.random.default_rng(seed)
        started = time.perf_counter()
        try:
            walks = serve_walks(
                resident.engine, n_walks, length, rng,
                temperature=float(temperature), chunk=chunk,
                starts_fn=starts_fn, starts=starts,
                deadline=time.monotonic() + float(timeout))
        except ValueError as exc:
            raise ServeError(400, str(exc))
        finally:
            self._wake.set()  # a no-op when the request failed early
        return {"model": key, "n_walks": n_walks, "length": length,
                "seed": seed, "walks": walks.tolist(),
                "seconds": time.perf_counter() - started}

    def evaluate(self, body: dict) -> dict:
        """Discrepancy scoreboard of a cached artifact (CLI `evaluate`).

        Serves the sidecar's recorded metrics when a ``with_metrics``
        run already paid for them; otherwise loads the cached generated
        graph and computes the overall scoreboard here.
        """
        key = body.get("model")
        if not isinstance(key, str) or not key:
            raise ServeError(400, "field 'model' (spec cache key) is "
                                  "required")
        if self.house.cache_dir is None:
            raise ServeError(404, "no artifact cache configured")
        if "/" in key or "\\" in key or ".." in key:
            raise ServeError(400, f"invalid model key {key!r}")
        meta_path = self.house.cache_dir / f"{key}.json"
        if not meta_path.exists():
            raise ServeError(404, f"no cached run {key!r} in "
                                  f"{self.house.cache_dir}")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServeError(500, f"unreadable sidecar for {key!r}: {exc}")
        if meta.get("metrics"):
            return {"model": key, "metrics": meta["metrics"],
                    "cached": True}
        graph_path = self.house.cache_dir / f"{key}.npz"
        if not graph_path.exists():
            raise ServeError(404, f"no generated graph for {key!r}")
        metrics = self._recompute_metrics(key, meta)
        return {"model": key, "metrics": metrics, "cached": False}

    def _recompute_metrics(self, key: str, meta: dict) -> dict:
        """Cold-evaluate metrics, written back through the artifact cache.

        Preferred path: replay the sidecar's spec through the experiment
        :class:`~repro.experiments.Runner` bound to the same cache — the
        scoreboard then matches a ``with_metrics`` sweep exactly
        (protected row, ASPL sampling budget and all) and
        ``_ensure_metrics`` persists it into the sidecar, so the *next*
        evaluate of this key hits the warm branch above.  Entries the
        Runner rejects (stale stamp / foreign format) fall back to a
        direct overall-only computation, served but not persisted.
        """
        try:
            from ..experiments import ExperimentSpec, Runner

            spec_fields = meta.get("spec") or {}
            spec = ExperimentSpec(
                model=spec_fields["model"],
                dataset=spec_fields["dataset"],
                profile=spec_fields.get("profile", "paper"),
                seed=int(spec_fields.get("seed", 0)),
                overrides=spec_fields.get("overrides") or ())
            with self._eval_lock:
                if self._eval_runner is None:
                    self._eval_runner = Runner(
                        cache_dir=self.house.cache_dir)
                result = self._eval_runner._load_from_disk(
                    spec, with_metrics=True)
            if result is not None and result.metrics is not None:
                return result.metrics
        except (ValueError, KeyError, OSError, TypeError):
            pass  # unreplayable sidecar: compute directly below
        from ..core.serialization import load_graph
        from ..data import load_dataset
        from ..eval import mean_discrepancy, overall_discrepancy

        try:
            generated = load_graph(self.house.cache_dir / f"{key}.npz")
            original = load_dataset(meta["spec"]["dataset"]).graph
        except (ValueError, KeyError, OSError) as exc:
            raise ServeError(500, f"failed to load artifacts for "
                                  f"{key!r}: {exc}")
        overall = overall_discrepancy(original, generated,
                                      rng=np.random.default_rng(0))
        return {"overall": overall,
                "overall_mean": mean_discrepancy(overall)}

    # -- introspection -------------------------------------------------
    def healthz(self) -> dict:
        return {"status": "ok",
                "uptime_seconds": time.monotonic() - self.started_at,
                "resident_models": self.house.resident_keys()}

    def stats(self) -> dict:
        with self.house._lock:
            engines = {key: r.engine.stats.as_dict()
                       for key, r in self.house._residents.items()}
        return {"admission": self.admission.snapshot(),
                "models": {"resident": list(engines),
                           "max_models": self.house.max_models,
                           "loads": self.house.loads,
                           "hits": self.house.hits,
                           "evictions": self.house.evictions},
                "engines": engines}
