"""Generation-as-a-service: continuous-batching decode behind a daemon.

Three pieces (see ISSUE/README "Serving"):

* :mod:`repro.serve.engine` — :class:`ContinuousBatcher`, which
  coalesces concurrent walk requests of different lengths into one
  KV-cached decode batch with byte-identical-to-standalone output;
* :mod:`repro.serve.daemon` — the stdlib-only ``repro serve`` HTTP
  server (model LRU, bounded admission queue, graceful drain);
* :mod:`repro.serve.client` — the thin HTTP client used by
  ``repro generate --server`` and the serving benchmark.
"""

from .engine import ContinuousBatcher, EngineStats, WalkTicket, serve_walks

__all__ = ["ContinuousBatcher", "EngineStats", "WalkTicket", "serve_walks"]
