"""Span tracing in Chrome ``trace_event`` format.

``span(name, **attrs)`` is the single instrumentation point::

    from repro.obs import trace

    with trace.span("serve.step", batch=n) as sp:
        rows = do_work()
        sp.set(rows=rows)          # extra args attached to the close event

When tracing is disabled (the default) ``span`` returns a shared
module-level no-op singleton — the call costs one global read plus one
tuple-return, no allocation, no branching inside ``__enter__``/
``__exit__``.  The micro-benchmark in ``benchmarks/
bench_observability.py`` holds this to a hard gate.

When enabled (``REPRO_TRACE=<path>`` in the environment, the global
``repro --trace <path>`` CLI flag, or :func:`enable` directly), spans
emit Chrome trace-event JSONL: one ``B`` (begin) and one ``E`` (end)
event per span with microsecond monotonic timestamps and per-process /
per-thread track ids, plus ``M`` metadata events naming each track.
The output file opens with ``[`` and writes one event per line with a
trailing comma — exactly the "JSON Array Format" that Perfetto and
``chrome://tracing`` load directly (the closing ``]`` is optional by
spec, and :func:`close` writes it anyway).

Forked children (``LocalWorkerPool``) re-open their own trace file at
``<path>.<pid>`` so two processes never interleave writes.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import sys
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "span",
    "instant",
    "enable",
    "disable",
    "enabled",
    "trace_path",
    "load_trace",
    "summarize_trace",
    "render_summary",
]

_ENV_VAR = "REPRO_TRACE"


class _Tracer:
    """Owns one open trace file; all writes go through one lock."""

    def __init__(self, path: str, process_name: Optional[str] = None) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh: Optional[io.TextIOBase] = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._named_threads: set = set()
        self._fh.write("[\n")
        if process_name is None:
            process_name = os.path.basename(sys.argv[0] or "python")
        self._raw(
            {
                "name": "process_name",
                "ph": "M",
                "pid": self._pid,
                "tid": 0,
                "args": {"name": f"{process_name} (pid {self._pid})"},
            }
        )

    @staticmethod
    def _now_us() -> float:
        return time.perf_counter_ns() / 1000.0

    def _raw(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        fh = self._fh
        if fh is None:
            return
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + ",\n")

    def _event(self, ph: str, name: str, args: Optional[dict]) -> None:
        tid = threading.get_ident()
        if tid not in self._named_threads:
            self._named_threads.add(tid)
            self._raw(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": threading.current_thread().name},
                }
            )
        event: Dict[str, object] = {
            "name": name,
            "ph": ph,
            "ts": self._now_us(),
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._raw(event)

    def begin(self, name: str, args: Optional[dict] = None) -> None:
        self._event("B", name, args)

    def end(self, name: str, args: Optional[dict] = None) -> None:
        self._event("E", name, args)

    def instant(self, name: str, args: Optional[dict] = None) -> None:
        self._event("i", name, args)

    def close(self) -> None:
        with self._lock:
            fh, self._fh = self._fh, None
        if fh is not None:
            try:
                # "{}]" (not bare "]") keeps the file valid strict JSON
                # despite the trailing comma each event line carries.
                fh.write("{}]\n")
                fh.close()
            except OSError:
                pass


# Module state -------------------------------------------------------

_TRACER: Optional[_Tracer] = None


class _NullSpan:
    """Shared no-op span: disabled-path cost is one global read."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs")
    enabled = True

    def __init__(self, tracer: _Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: object) -> "_Span":
        """Attach attrs; emitted on the close event."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._tracer.begin(self.name, dict(self.attrs) or None)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer.end(self.name, dict(self.attrs) or None)
        return False


def span(name: str, **attrs: object):
    """A context manager tracing ``name``; no-op singleton when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return _Span(tracer, name, attrs)


def instant(name: str, **attrs: object) -> None:
    """Emit a zero-duration instant event (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, attrs or None)


def enable(path: str | os.PathLike, *, process_name: Optional[str] = None) -> str:
    """Start tracing to ``path``; returns the path actually opened."""
    global _TRACER
    disable()
    _TRACER = _Tracer(os.fspath(path), process_name)
    return _TRACER.path


def disable() -> None:
    """Stop tracing and close the current file, if any."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None:
        tracer.close()


def enabled() -> bool:
    return _TRACER is not None


def trace_path() -> Optional[str]:
    tracer = _TRACER
    return tracer.path if tracer is not None else None


def _reopen_in_child() -> None:
    """After fork: give the child its own file so writes never interleave."""
    global _TRACER
    tracer = _TRACER
    if tracer is None:
        return
    # The inherited handle belongs to the parent; abandon it unflushed.
    tracer._fh = None
    _TRACER = _Tracer(f"{tracer.path}.{os.getpid()}")


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reopen_in_child)

atexit.register(disable)

_env_path = os.environ.get(_ENV_VAR)
if _env_path:
    enable(_env_path)


# Reading traces back ------------------------------------------------


def load_trace(path: str | os.PathLike) -> List[dict]:
    """Parse a trace file back into a list of event dicts.

    Accepts both the streaming JSONL layout this module writes (with or
    without the closing ``]``) and a plain JSON array.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.strip()
    if not stripped:
        return []
    try:
        loaded = json.loads(stripped)
        if isinstance(loaded, list):
            return [e for e in loaded if isinstance(e, dict) and e]
    except ValueError:
        pass
    # Line-oriented fallback: "[", then "{...}," per line, optional "]".
    events: List[dict] = []
    for line in stripped.splitlines():
        line = line.strip().rstrip(",")
        if line in ("", "[", "]"):
            continue
        event = json.loads(line)
        if isinstance(event, dict) and event:
            events.append(event)
    return events


def summarize_trace(
    paths: Iterable[str | os.PathLike],
) -> List[Dict[str, object]]:
    """Aggregate B/E span pairs into a per-name time table.

    Returns rows ``{name, count, total_us, self_us, avg_us, max_us}``
    sorted by total time descending.  ``self_us`` excludes time spent
    in nested child spans on the same track.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for path in paths:
        events = load_trace(path)
        stacks: Dict[Tuple[int, int], List[List[object]]] = {}
        for event in sorted(events, key=lambda e: e.get("ts", 0.0)):
            ph = event.get("ph")
            if ph not in ("B", "E"):
                continue
            track = (event.get("pid", 0), event.get("tid", 0))
            stack = stacks.setdefault(track, [])
            if ph == "B":
                # [name, begin_ts, child_time_us]
                stack.append([event.get("name", "?"), float(event["ts"]), 0.0])
            else:
                if not stack:
                    continue  # unbalanced tail (truncated trace)
                name, begin_ts, child_us = stack.pop()
                dur = float(event["ts"]) - begin_ts
                if stack:
                    stack[-1][2] += dur
                row = totals.setdefault(
                    str(name),
                    {"count": 0, "total_us": 0.0, "self_us": 0.0, "max_us": 0.0},
                )
                row["count"] += 1
                row["total_us"] += dur
                row["self_us"] += dur - child_us
                row["max_us"] = max(row["max_us"], dur)
    out: List[Dict[str, object]] = []
    for name, row in totals.items():
        count = int(row["count"])
        out.append(
            {
                "name": name,
                "count": count,
                "total_us": row["total_us"],
                "self_us": row["self_us"],
                "avg_us": row["total_us"] / count if count else 0.0,
                "max_us": row["max_us"],
            }
        )
    out.sort(key=lambda r: (-float(r["total_us"]), r["name"]))
    return out


def render_summary(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text table for ``repro trace summarize``."""
    if not rows:
        return "(no spans)"
    header = f"{'span':<32} {'count':>8} {'total ms':>12} {'self ms':>12} {'avg ms':>10} {'max ms':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['name'])[:32]:<32} {row['count']:>8} "
            f"{float(row['total_us']) / 1000.0:>12.3f} "
            f"{float(row['self_us']) / 1000.0:>12.3f} "
            f"{float(row['avg_us']) / 1000.0:>10.3f} "
            f"{float(row['max_us']) / 1000.0:>10.3f}"
        )
    return "\n".join(lines)
