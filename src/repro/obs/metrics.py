"""Thread-safe metrics registry: counters, gauges, histograms.

Stdlib-only. Three metric kinds, all supporting labeled series:

* :class:`Counter` — monotonically increasing floats (``inc``).
* :class:`Gauge` — last-write-wins floats (``set``/``inc``/``dec``/
  ``set_max``), optionally backed by a callable for live values.
* :class:`Histogram` — fixed upper-bound buckets with cumulative
  counts, a running sum, and percentile estimation (p50/p90/p99 in
  snapshots) by linear interpolation inside the winning bucket.

A :class:`MetricsRegistry` owns metrics; registration is get-or-create
and idempotent (re-registering the same name with the same kind returns
the existing metric; a different kind raises).  There is one
process-wide default registry (:func:`get_registry`) for production
wiring, but every instrumented component accepts an injectable registry
so tests can isolate counts.

Exporters:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format (``# HELP``/``# TYPE`` plus ``_bucket``/``_sum``/
  ``_count`` series for histograms).
* :meth:`MetricsRegistry.snapshot` — plain-dict snapshot, and
  :meth:`MetricsRegistry.write_snapshot` which merge-updates a JSON
  file atomically (tmp + rename), in the same style as the
  ``BENCH_*.json`` artifacts.

All mutation is guarded by a per-registry lock, so concurrent
increments from ThreadingHTTPServer handler threads, decode drivers,
and sweep workers are safe and exact.
"""

from __future__ import annotations

import bisect
import json
import os
import re
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Seconds-oriented default buckets (Prometheus-style, truncated).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = ['%s="%s"' % (k, _escape_label_value(v)) for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base: named metric owning labeled series under the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, object] = {}

    def _check_labels(self, labels: Dict[str, object]) -> None:
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name: {k!r}")

    def _series_key(self, labels: Dict[str, object]) -> LabelKey:
        """Label key for a write; validates names on first appearance
        only, so steady-state increments skip the regex."""
        key = _label_key(labels)
        if key not in self._series:
            self._check_labels(labels)
        return key

    # Exporter hooks -------------------------------------------------
    def expositions(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot_value(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._series_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        """Sum across all labeled series."""
        with self._lock:
            return float(sum(self._series.values()))

    def expositions(self) -> List[str]:
        with self._lock:
            items = sorted(self._series.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(val)}"
            for key, val in items
        ]

    def snapshot_value(self) -> object:
        with self._lock:
            items = sorted(self._series.items())
        if len(items) == 1 and items[0][0] == ():
            return items[0][1]
        return {json.dumps(dict(key)): val for key, val in items}


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._series_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._series_key(labels)
        with self._lock:
            cur = self._series.get(key, 0.0)
            if callable(cur):
                raise ValueError(f"gauge {self.name} is callback-backed")
            self._series[key] = cur + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: object) -> None:
        """Keep the running maximum (e.g. peak batch occupancy)."""
        key = self._series_key(labels)
        with self._lock:
            cur = self._series.get(key, float("-inf"))
            if callable(cur):
                raise ValueError(f"gauge {self.name} is callback-backed")
            if value > cur:
                self._series[key] = float(value)

    def set_function(self, fn: Callable[[], float], **labels: object) -> None:
        """Back this series with a callable evaluated at read time."""
        key = self._series_key(labels)
        with self._lock:
            self._series[key] = fn

    def value(self, **labels: object) -> float:
        key = _label_key(labels)
        with self._lock:
            cur = self._series.get(key, 0.0)
        if callable(cur):
            return float(cur())
        return float(cur)

    def _materialized(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            items = sorted(self._series.items())
        out: List[Tuple[LabelKey, float]] = []
        for key, val in items:
            out.append((key, float(val()) if callable(val) else float(val)))
        return out

    def expositions(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format_value(val)}"
            for key, val in self._materialized()
        ]

    def snapshot_value(self) -> object:
        items = self._materialized()
        if len(items) == 1 and items[0][0] == ():
            return items[0][1]
        return {json.dumps(dict(key)): val for key, val in items}


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * (nbuckets + 1)  # final slot = +Inf overflow
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if any(b != b for b in bounds):  # NaN guard
            raise ValueError("histogram buckets must be finite")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.buckets: Tuple[float, ...] = tuple(bounds)

    def observe(self, value: float, **labels: object) -> None:
        key = self._series_key(labels)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.counts[idx] += 1
            series.sum += value
            series.count += 1

    def time(self, **labels: object) -> "_HistogramTimer":
        """Context manager observing elapsed wall-clock seconds."""
        return _HistogramTimer(self, labels)

    def _get(self, labels: Dict[str, object]) -> Optional[_HistogramSeries]:
        key = _label_key(labels)
        with self._lock:
            return self._series.get(key)

    def count(self, **labels: object) -> int:
        series = self._get(labels)
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        series = self._get(labels)
        return series.sum if series is not None else 0.0

    def percentile(self, p: float, **labels: object) -> float:
        """Estimate the p-th percentile (0..100) from bucket counts.

        Linear interpolation inside the winning bucket; the overflow
        bucket reports its lower bound (the largest finite boundary).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        series = self._get(labels)
        if series is None or series.count == 0:
            return 0.0
        with self._lock:
            counts = list(series.counts)
            total = series.count
        rank = (p / 100.0) * total
        cumulative = 0
        for idx, c in enumerate(counts):
            if c == 0:
                continue
            prev_cum = cumulative
            cumulative += c
            if cumulative >= rank:
                if idx >= len(self.buckets):
                    return self.buckets[-1]
                hi = self.buckets[idx]
                lo = self.buckets[idx - 1] if idx > 0 else 0.0
                if c == 0:
                    return hi
                frac = (rank - prev_cum) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.buckets[-1]

    def expositions(self) -> List[str]:
        with self._lock:
            items = [
                (key, list(s.counts), s.sum, s.count)
                for key, s in sorted(self._series.items())
            ]
        lines: List[str] = []
        for key, counts, total_sum, count in items:
            cumulative = 0
            for idx, bound in enumerate(self.buckets):
                cumulative += counts[idx]
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}"
                )
            cumulative += counts[-1]
            inf_le = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{_render_labels(key, inf_le)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_format_value(total_sum)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def snapshot_value(self) -> object:
        with self._lock:
            items = [
                (key, list(s.counts), s.sum, s.count)
                for key, s in sorted(self._series.items())
            ]
        out = {}
        for key, counts, total_sum, count in items:
            entry = {
                "count": count,
                "sum": total_sum,
                "buckets": {
                    _format_value(b): c for b, c in zip(self.buckets, counts)
                },
                "overflow": counts[-1],
                "p50": self.percentile(50, **dict(key)),
                "p90": self.percentile(90, **dict(key)),
                "p99": self.percentile(99, **dict(key)),
            }
            out[json.dumps(dict(key))] = entry
        if len(out) == 1 and json.dumps({}) in out:
            return out[json.dumps({})]
        return out


class _HistogramTimer:
    __slots__ = ("_hist", "_labels", "_start")

    def __init__(self, hist: Histogram, labels: Dict[str, object]) -> None:
        self._hist = hist
        self._labels = labels

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._hist.observe(time.perf_counter() - self._start, **self._labels)


class MetricsRegistry:
    """Get-or-create registry of named metrics, safe for concurrent use."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, name: str, factory: Callable[[], _Metric], kind: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help, self._lock), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, self._lock), "gauge"
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, self._lock, buckets), "histogram"
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # Exporters ------------------------------------------------------
    def render_prometheus(self) -> str:
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.expositions())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        out: Dict[str, object] = {}
        for metric in metrics:
            out[metric.name] = {
                "kind": metric.kind,
                "value": metric.snapshot_value(),
            }
        return out

    def write_snapshot(self, path: str | os.PathLike, **extra: object) -> Dict[str, object]:
        """Merge-update ``path`` with the current snapshot, atomically.

        Existing top-level keys not present in this snapshot survive, so
        multiple registries / repeated runs can share one file the same
        way the BENCH_*.json artifacts do.  Returns the merged payload.
        """
        path = os.fspath(path)
        existing: Dict[str, object] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict):
                existing = loaded
        except (OSError, ValueError):
            existing = {}
        existing.update(self.snapshot())
        existing.update(extra)
        existing["snapshot_unix_time"] = time.time()
        tmp = f"{path}.tmp.{os.getpid()}"
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(existing, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return existing


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY
