"""Unified observability: metrics registry + span tracing.

Two stdlib-only pillars shared by every layer of the stack:

* :mod:`repro.obs.metrics` — thread-safe counters / gauges /
  histograms with labels, a process-wide default registry plus
  injectable instances, Prometheus text exposition, and merge-updated
  JSON snapshots.
* :mod:`repro.obs.trace` — ``span(name, **attrs)`` context managers
  emitting Chrome trace-event JSONL (Perfetto / chrome://tracing),
  enabled via ``REPRO_TRACE=<path>`` or ``repro --trace <path>``; a
  strict no-op when disabled.

Instrumentation is wired through the Trainer (``MetricsCallback``),
the Runner artifact cache, the walk engines, the sweep scheduler, and
the serve daemon (``GET /metrics``).  It never touches RNG streams:
fitted artifacts are byte-identical with tracing on or off.
"""

from . import metrics, trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import span

__all__ = [
    "metrics",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "span",
]
