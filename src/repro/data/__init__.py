"""Benchmark datasets (synthetic stand-ins for the paper's Table I)."""

from .datasets import (Dataset, dataset_names, dataset_statistics,
                       labeled_dataset_names, load_dataset)

__all__ = ["Dataset", "load_dataset", "dataset_names",
           "labeled_dataset_names", "dataset_statistics"]
