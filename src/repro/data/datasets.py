"""Deterministic stand-ins for the paper's seven benchmark datasets.

Table I of the paper lists EMAIL, FB, BLOG, FLICKR, GNU, CA and ACM.  The
raw downloads (SNAP, BlogCatalog, ...) are unavailable offline, so each
dataset is re-created synthetically with the structural signature that the
experiments rely on, at roughly 1/10 to 1/20 of the published size so CPU
training is feasible:

* EMAIL — dense intra-department communication: an SBM with a few dense
  blocks and appreciable cross-block traffic.
* FB — social friendship circles: preferential attachment plus triadic
  closure (heavy tail + high clustering).
* GNU — peer-to-peer file sharing: sparse preferential attachment with
  low clustering.
* CA — collaboration: a union of small cliques (papers) with bridging
  authors.
* BLOG / FLICKR / ACM — labeled social/collaboration graphs with C
  classes and a small protected group (race for BLOG/FLICKR, the
  low-population topic for ACM), built on a planted-partition model whose
  protected block is cohesive but under-represented.

Every dataset is generated from a fixed seed: two calls return identical
graphs, which is what makes the benchmark tables reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph, barabasi_albert, planted_protected_graph, \
    stochastic_block_model
from ..utils import few_shot_labels

__all__ = ["Dataset", "load_dataset", "dataset_names", "labeled_dataset_names",
           "dataset_statistics"]


@dataclass(frozen=True)
class Dataset:
    """A benchmark graph plus optional labels and protected group."""

    name: str
    graph: Graph
    labels: np.ndarray | None = None         #: per-node class (labeled sets)
    protected_mask: np.ndarray | None = None  #: per-node S+ membership
    num_classes: int | None = None
    description: str = ""

    @property
    def has_labels(self) -> bool:
        return self.labels is not None

    def labeled_few_shot(self, per_class: int,
                         rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Sample the few-shot labeled set L: ``per_class`` nodes per class.

        Guarantees at least one example per class (Section II-A requires
        "at least one from each class").
        """
        if not self.has_labels:
            raise ValueError(f"dataset {self.name} has no labels")
        return few_shot_labels(self.labels, self.num_classes, rng,
                               per_class)


def _email(rng: np.random.Generator) -> Dataset:
    sizes = [28, 24, 22, 18, 14]
    probs = np.full((5, 5), 0.03)
    np.fill_diagonal(probs, [0.45, 0.4, 0.45, 0.5, 0.5])
    graph, _ = stochastic_block_model(sizes, probs, rng)
    return Dataset("EMAIL", graph,
                   description="student communication network (dense blocks)")


def _fb(rng: np.random.Generator) -> Dataset:
    base = barabasi_albert(220, 5, rng)
    # Triadic closure: close a sample of open wedges to raise clustering.
    edges = set(map(tuple, base.edges()))
    for node in range(base.num_nodes):
        nbrs = base.neighbors(node)
        if nbrs.size < 2:
            continue
        for _ in range(2):
            u, v = rng.choice(nbrs, size=2, replace=False)
            edge = (int(min(u, v)), int(max(u, v)))
            if edge[0] != edge[1]:
                edges.add(edge)
    return Dataset("FB", Graph.from_edges(base.num_nodes, edges),
                   description="social circles (heavy tail, high clustering)")


def _gnu(rng: np.random.Generator) -> Dataset:
    return Dataset("GNU", barabasi_albert(320, 2, rng),
                   description="peer-to-peer file sharing (sparse, low CC)")


def _ca(rng: np.random.Generator) -> Dataset:
    edges: list[tuple[int, int]] = []
    node = 0
    authors: list[int] = []
    while node < 250:
        size = int(rng.integers(3, 7))
        members = list(range(node, min(node + size, 260)))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.append((u, v))
        authors.extend(members)
        node += size
    num_nodes = node
    # Bridging authors connect cliques into one collaboration web.
    for _ in range(num_nodes // 3):
        u, v = rng.integers(num_nodes, size=2)
        if u != v:
            edges.append((int(min(u, v)), int(max(u, v))))
    return Dataset("CA", Graph.from_edges(num_nodes, edges),
                   description="co-authorship cliques with bridges")


def _labeled(name: str, rng: np.random.Generator, num_unprotected: int,
             num_protected: int, num_classes: int, p_in: float,
             p_out: float, description: str,
             protected_as_class: bool = False) -> Dataset:
    graph, labels, protected = planted_protected_graph(
        num_unprotected, num_protected, rng, p_in=p_in, p_out=p_out,
        num_classes=num_classes, protected_as_class=protected_as_class)
    return Dataset(name, graph, labels=labels, protected_mask=protected,
                   num_classes=int(labels.max()) + 1,
                   description=description)


_BUILDERS = {
    "EMAIL": (_email, 7001),
    "FB": (_fb, 7002),
    "GNU": (_gnu, 7003),
    "CA": (_ca, 7004),
    # BLOG/FLICKR: the protected attribute (race) is orthogonal to the
    # class labels; ACM: the protected group IS the low-population topic,
    # so there it carries its own class (8 + 1 = 9, matching Table I).
    "BLOG": (lambda rng: _labeled("BLOG", rng, 300, 24, 6, 0.10, 0.004,
                                  "blog social network, protected: race"),
             7005),
    "FLICKR": (lambda rng: _labeled("FLICKR", rng, 380, 27, 9, 0.12, 0.003,
                                    "photo social network, protected: race"),
               7006),
    "ACM": (lambda rng: _labeled("ACM", rng, 420, 28, 8, 0.10, 0.002,
                                 "collaboration network, protected: "
                                 "low-population topic",
                                 protected_as_class=True),
            7007),
}


def dataset_names() -> list[str]:
    """All seven benchmark dataset names, in Table I order."""
    return ["EMAIL", "FB", "BLOG", "FLICKR", "GNU", "CA", "ACM"]


def labeled_dataset_names() -> list[str]:
    """The three datasets with labels and protected groups."""
    return ["BLOG", "FLICKR", "ACM"]


def load_dataset(name: str) -> Dataset:
    """Load a benchmark dataset by name (deterministic)."""
    key = name.upper()
    if key not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: "
                       f"{dataset_names()}")
    builder, seed = _BUILDERS[key]
    return builder(np.random.default_rng(seed))


def dataset_statistics(dataset: Dataset) -> dict[str, object]:
    """Table I row: nodes, edges, classes, protected-group size."""
    return {
        "name": dataset.name,
        "nodes": dataset.graph.num_nodes,
        "edges": dataset.graph.num_edges,
        "classes": dataset.num_classes if dataset.has_labels else None,
        "protected": (int(dataset.protected_mask.sum())
                      if dataset.protected_mask is not None else None),
    }
